"""Spatial sharding: one partition served as a tile grid of shard indexes.

A dense label grid over a continent-scale map does not fit one node.
:class:`ShardedDeployment` models the standard answer: tile the map into a
``shard_rows x shard_cols`` grid of independent cell blocks, give every
shard its own contiguous slice of the label grid, and answer a batch query
by *bucketing* — vectorised arithmetic assigns each query point to its
shard, each touched shard answers its bucket with one gather over its
local slice, and the buckets merge back into one result array in the
original query order.

Region indices are global, so the merged answers are bit-identical to a
monolithic :class:`~repro.serving.server.PartitionServer` over the same
partition (``tests/serving/test_sharding.py`` enforces this;
``benchmarks/test_bench_routing.py`` tracks the dispatch cost).

Dispatch plans
--------------

``locate_points`` picks between three execution plans (``plan="auto"``
chooses per batch):

* ``"sequential"`` — bucket the batch with per-axis routing tables (a
  table lookup per point, no ``searchsorted``), group it with one stable
  radix argsort over compact tile ids, and gather every bucket in sorted
  order from the tiles' concatenated flat index.  The sorted gather walks
  each tile's memory contiguously, which is what makes sharding *win* on
  grids too large for cache (the large-map benchmark's crossover).
* ``"parallel"`` — the same scatter, but every tile's bucket is submitted
  to a shared :class:`~concurrent.futures.ThreadPoolExecutor`
  (:attr:`~repro.config.ServingConfig.shard_workers`); numpy's fancy
  indexing releases the GIL, so buckets gather concurrently where cores
  exist.  Batches below
  :attr:`~repro.config.ServingConfig.parallel_threshold` fall back to the
  sequential plan so small queries never pay pool overhead.  Bucket
  writes land in disjoint slices of one output array, so results are
  deterministic regardless of thread scheduling.
* ``"fused"`` — for tiles that are co-resident in one process, the tiles
  are merged into a single sentinel-padded label grid (one extra ``-1``
  row and column; off-map points locate to ``(-1, -1)`` and wrap into the
  sentinel border) and the whole batch is answered with one gather — no
  mask, no sort, no scatter.  This is the in-process fast path the
  routing benchmark holds to <= 0% overhead against a monolithic server;
  a distributed deployment, where tiles live on other nodes, would use
  the ``parallel`` plan's scatter instead.

``auto`` uses the sequential scatter below ``parallel_threshold`` (exact
per-shard load accounting, no pool or fused-index cost for small
batches) and the fused gather above it.

Per-tile hot-swap
-----------------

Every tile is *versioned*: :meth:`ShardedDeployment.swap_shard` replaces
one tile's labels (appending to that tile's history) and
:meth:`ShardedDeployment.rollback_shard` steps one back, while queries
keep flowing — the swap happens under the tile's own writer-preferring
:class:`~repro.serving.locks.ReadWriteLock`, and the serving indexes are
rebuilt copy-on-write and republished by atomic reference assignment, so
an in-flight batch always answers from one consistent snapshot of every
tile (no torn reads across tiles; the stress suite in
``tests/serving/test_shard_concurrency.py`` verifies reads bit-exact
against a single-threaded oracle of the versioned tile states).

Scope note: shards are always *dense* label slices copied out of the
source partition's label grid at construction — the
:attr:`~repro.config.ServingConfig.backend` knob selects the index of
monolithic servers and does not reach inside shard tiles.  In this
in-process model the source partition (and its dense grid) is resident
anyway; the class demonstrates the routing/merge mechanics, while the
per-node memory win only materialises when tiles live on separate nodes.
"""

from __future__ import annotations

import os
from concurrent.futures import ThreadPoolExecutor
from typing import Any, Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..config import ServingConfig
from ..exceptions import GridError, ServingError
from ..spatial.geometry import BoundingBox
from ..spatial.partition import Partition
from .locks import ReadWriteLock, new_lock, new_rwlock
from .server import PartitionServer, region_counts_from_assignment

__all__ = [
    "ShardedDeployment",
    "TileGeometry",
    "TileGridIndex",
    "build_tile_index",
    "DISPATCH_PLANS",
]

#: The execution plans :meth:`ShardedDeployment.locate_points` accepts.
DISPATCH_PLANS = ("auto", "sequential", "parallel", "fused")


def _axis_tables(n_cells: int, n_tiles: int) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """One axis of the tiling: edges plus per-cell routing tables.

    Returns ``(edges, tile_of, local_of)`` where ``tile_of[cell]`` is the
    tile index owning that cell row/column and ``local_of[cell]`` its
    offset inside the tile.  A table lookup replaces the per-batch
    ``searchsorted`` the old scatter paid (on a 10^6-point batch the two
    searchsorted calls alone cost more than a monolithic server's whole
    answer).
    """
    edges = np.linspace(0, n_cells, n_tiles + 1).astype(np.int64, copy=False)
    sizes = np.diff(edges)
    tile_of = np.repeat(np.arange(n_tiles, dtype=np.int64), sizes)
    local_of = np.arange(n_cells, dtype=np.int64) - np.repeat(edges[:-1], sizes)
    return edges, tile_of, local_of


class TileGeometry:
    """The tiling itself: how grid cells route to tiles, labels aside.

    Immutable and shared across every :class:`TileGridIndex` snapshot of
    one deployment — tile *contents* change on hot-swap, the tiling never
    does.  Tile ids are compact integers (``int16`` whenever the tile
    count fits), because the stable argsort that groups a batch into
    buckets is a radix sort for narrow integer keys — the difference
    between ~10 ms and ~40 ms on a 10^6-point batch.
    """

    __slots__ = (
        "rows", "cols", "shard_rows", "shard_cols", "n_tiles",
        "row_edges", "col_edges", "row_local", "col_local",
        "row_term", "col_term", "tile_heights", "tile_widths",
        "tile_base", "n_cells_total",
    )

    def __init__(self, rows: int, cols: int, shard_rows: int, shard_cols: int) -> None:
        self.rows, self.cols = int(rows), int(cols)
        self.shard_rows, self.shard_cols = int(shard_rows), int(shard_cols)
        self.n_tiles = self.shard_rows * self.shard_cols
        self.row_edges, row_tile, self.row_local = _axis_tables(rows, shard_rows)
        self.col_edges, col_tile, self.col_local = _axis_tables(cols, shard_cols)
        id_dtype = np.int16 if self.n_tiles <= np.iinfo(np.int16).max else np.int64
        # tile_id = row_term[row] + col_term[col]; the row term pre-folds
        # the `* shard_cols`, so bucketing is two gathers and one add.
        self.row_term = (row_tile * self.shard_cols).astype(id_dtype, copy=False)
        self.col_term = col_tile.astype(id_dtype, copy=False)
        heights = np.diff(self.row_edges)
        widths = np.diff(self.col_edges)
        self.tile_heights = np.repeat(heights, self.shard_cols)
        self.tile_widths = np.tile(widths, self.shard_rows)
        sizes = self.tile_heights * self.tile_widths
        self.tile_base = np.concatenate(([0], np.cumsum(sizes)))[:-1]
        self.n_cells_total = int(sizes.sum())

    def tile_window(self, index: int) -> Tuple[int, int, int, int]:
        """The cell window ``(r0, r1, c0, c1)`` of tile ``index`` (row-major)."""
        i, j = divmod(int(index), self.shard_cols)
        return (
            int(self.row_edges[i]), int(self.row_edges[i + 1]),
            int(self.col_edges[j]), int(self.col_edges[j + 1]),
        )

    def tile_ids(self, rows: np.ndarray, cols: np.ndarray) -> np.ndarray:
        """Tile id per in-grid cell coordinate pair (compact integer dtype)."""
        return self.row_term[rows] + self.col_term[cols]

    def flat_offsets(
        self, rows: np.ndarray, cols: np.ndarray, ids: np.ndarray
    ) -> np.ndarray:
        """Per-point offsets into the concatenated-tile flat index."""
        return (
            self.tile_base[ids]
            + self.row_local[rows] * self.tile_widths[ids]
            + self.col_local[cols]
        )


class TileGridIndex:
    """One immutable snapshot of every tile's labels, gatherable by plan.

    The tiles are stored concatenated into a single flat array (row-major
    per tile), so the sequential plan can answer a sorted batch with one
    1-D gather — on grids far beyond cache this walks each tile
    contiguously and beats the monolithic 2-D gather, which is the whole
    point of bucketing.  Snapshots are never mutated: a hot-swap builds a
    new index and publishes it by reference assignment, which is what
    makes the read path lock-free.
    """

    __slots__ = ("geometry", "tiles_flat")

    def __init__(self, geometry: TileGeometry, tiles: Sequence[np.ndarray]) -> None:
        if len(tiles) != geometry.n_tiles:
            raise ServingError(
                f"tile index needs {geometry.n_tiles} tiles, got {len(tiles)}"
            )
        self.geometry = geometry
        flat = np.empty(geometry.n_cells_total, dtype=np.int64)
        for index, tile in enumerate(tiles):
            expected = (
                int(geometry.tile_heights[index]), int(geometry.tile_widths[index])
            )
            if tuple(tile.shape) != expected:
                raise ServingError(
                    f"tile {index} has shape {tuple(tile.shape)}, "
                    f"expected {expected}"
                )
            base = int(geometry.tile_base[index])
            flat[base:base + tile.size] = tile.reshape(-1)
        self.tiles_flat = flat  # array: tiles_flat int64[cells] contiguous

    def tile_view(self, index: int) -> np.ndarray:
        """Tile ``index`` as a 2-D view into the flat index (no copy)."""
        geometry = self.geometry
        base = int(geometry.tile_base[index])
        shape = (int(geometry.tile_heights[index]), int(geometry.tile_widths[index]))
        return self.tiles_flat[base:base + shape[0] * shape[1]].reshape(shape)

    @property
    def nbytes(self) -> int:
        return int(self.tiles_flat.nbytes)

    def gather_into(
        self,
        rows: np.ndarray,
        cols: np.ndarray,
        out: np.ndarray,
        executor: Optional[ThreadPoolExecutor] = None,
    ) -> np.ndarray:
        """Answer in-grid cell coordinates into ``out``; returns per-tile counts.

        Sequential (``executor=None``): one stable radix argsort groups
        the batch by tile, then a single sorted 1-D gather answers it.
        Parallel: the sorted order is split into per-tile buckets and each
        bucket is gathered on the executor — buckets write disjoint slices
        of ``out``, so the result is deterministic and identical to the
        sequential plan's.  The returned counts vector (points per tile,
        row-major) is computed vectorised and is what the deployment's
        per-shard load counters consume.
        """
        # array: rows int64[n]
        # array: cols int64[n]
        # array: out int64[n]
        # returns: int64[t]
        geometry = self.geometry
        if rows.size == 0:
            return np.zeros(geometry.n_tiles, dtype=np.int64)
        ids = geometry.tile_ids(rows, cols)
        offsets = geometry.flat_offsets(rows, cols, ids)
        order = np.argsort(ids, kind="stable")
        if executor is None:
            out[order] = self.tiles_flat[offsets[order]]
        else:
            boundaries = np.flatnonzero(np.diff(ids[order])) + 1
            futures = [
                executor.submit(self._gather_bucket, bucket, offsets, out)
                for bucket in np.split(order, boundaries)  # repro: ignore[hot-path-loop] -- one submit per distinct tile in the batch (<= n_tiles), not per point
            ]
            for future in futures:
                future.result()  # propagate any worker failure
        # bincount already yields int64 here, so copy=False makes this a
        # free view instead of a per-batch copy.
        return np.bincount(ids, minlength=geometry.n_tiles).astype(
            np.int64, copy=False
        )

    def _gather_bucket(
        self, bucket: np.ndarray, offsets: np.ndarray, out: np.ndarray
    ) -> None:
        out[bucket] = self.tiles_flat[offsets[bucket]]

    def gather(
        self,
        rows: np.ndarray,
        cols: np.ndarray,
        executor: Optional[ThreadPoolExecutor] = None,
    ) -> np.ndarray:
        """:meth:`gather_into` a fresh int64 result array (counts dropped)."""
        # array: rows int64[n]
        # array: cols int64[n]
        # returns: int64[n]
        out = np.empty(rows.shape, dtype=np.int64)
        self.gather_into(rows, cols, out, executor=executor)
        return out


def build_tile_index(
    labels: np.ndarray, shard_rows: int, shard_cols: int
) -> TileGridIndex:
    """A :class:`TileGridIndex` over ``labels`` tiled ``shard_rows x shard_cols``.

    The standalone entry point for serving a bare label grid through the
    bucketed kernel — the large-map benchmark uses it to compare the
    sorted tile gather against the monolithic 2-D gather without building
    a full partition around a synthetic 10^8-cell grid.
    """
    labels = np.asarray(labels)
    if labels.ndim != 2:
        raise ServingError(f"label grid must be 2-D, got shape {labels.shape}")
    geometry = TileGeometry(labels.shape[0], labels.shape[1], shard_rows, shard_cols)
    tiles = [
        labels[r0:r1, c0:c1]
        for r0, r1, c0, c1 in map(geometry.tile_window, range(geometry.n_tiles))
    ]
    return TileGridIndex(geometry, tiles)


class _Shard:
    """One tile: its cell window plus a version history of label slices.

    ``lock`` (writer-preferring) serialises swap/rollback on this tile
    against each other and against metadata readers; the query path never
    takes it — queries answer from immutable published index snapshots.
    ``counter_lock`` guards the load counter, which parallel dispatch
    bumps from pool workers.
    """

    __slots__ = (
        "row", "col", "row_start", "col_start",
        "lock", "counter_lock", "points_served", "_history", "_active",
    )

    def __init__(
        self, row: int, col: int, row_start: int, col_start: int, labels: np.ndarray
    ) -> None:
        self.row = row
        self.col = col
        self.row_start = row_start
        self.col_start = col_start
        self.lock = new_rwlock("shard.lock")
        self.counter_lock = new_lock("shard.counter_lock")
        self.points_served = 0  # guarded-by: self.counter_lock
        self._history: List[np.ndarray] = [labels]  # guarded-by(writes): self.lock
        self._active = 0  # guarded-by(writes): self.lock

    @property
    def labels(self) -> np.ndarray:
        return self._history[self._active]

    @property
    def version(self) -> int:
        """1-based version of the labels this tile currently serves."""
        return self._active + 1

    @property
    def n_versions(self) -> int:
        return len(self._history)

    def swap(self, labels: np.ndarray) -> int:
        with self.lock.write():
            self._history.append(labels)
            self._active = len(self._history) - 1
            return self._active + 1

    def rollback(self) -> int:
        with self.lock.write():
            if self._active == 0:
                raise ServingError(
                    f"shard ({self.row}, {self.col}) is already serving its "
                    "original labels; nothing to roll back"
                )
            self._active -= 1
            return self._active + 1


class ShardedDeployment:
    """A partition served as ``shard_rows x shard_cols`` independent tiles.

    Parameters
    ----------
    partition:
        The partition to shard.  Region indices stay global, so results
        are interchangeable with a monolithic server's.
    shard_rows, shard_cols:
        The shard tiling.  Must not exceed the grid's cell resolution
        (every shard needs at least one cell row/column).
    provenance:
        Build metadata surfaced by :meth:`describe`, like the server's.
    config:
        ``config.strict`` sets the default off-map behaviour, exactly as
        on :class:`~repro.serving.server.PartitionServer`;
        ``config.parallel_threshold`` is the batch size below which the
        ``auto``/``parallel`` plans stay sequential, and
        ``config.shard_workers`` sizes the shared bucket-gather pool
        (``0`` = one worker per core, capped at the tile count).

    Thread-safety: queries are lock-free (they answer from immutable
    index snapshots published by reference assignment);
    :meth:`swap_shard` / :meth:`rollback_shard` mutate one tile under its
    writer-preferring lock and republish the indexes copy-on-write under
    the deployment's admin mutex, so concurrent queries see either the
    old or the new snapshot, never a mix.
    """

    def __init__(
        self,
        partition: Partition,
        shard_rows: int = 2,
        shard_cols: int = 2,
        provenance: Dict[str, Any] | None = None,
        config: ServingConfig | None = None,
    ) -> None:
        grid = partition.grid
        if shard_rows < 1 or shard_cols < 1:
            raise ServingError(
                f"shard counts must be positive, got {shard_rows}x{shard_cols}"
            )
        if shard_rows > grid.rows or shard_cols > grid.cols:
            raise ServingError(
                f"cannot shard a {grid.rows}x{grid.cols} grid into "
                f"{shard_rows}x{shard_cols} tiles"
            )
        self._partition = partition
        self._grid = grid
        self._provenance = dict(provenance or {})
        self._config = config or ServingConfig()
        self._shard_rows = int(shard_rows)
        self._shard_cols = int(shard_cols)
        self._geometry = TileGeometry(grid.rows, grid.cols, shard_rows, shard_cols)
        # Kept as attributes for introspection parity with the old layout.
        self._row_edges = self._geometry.row_edges
        self._col_edges = self._geometry.col_edges
        self._range_server: Optional[PartitionServer] = None
        labels = partition.label_grid
        self._shards: List[_Shard] = []
        for index in range(self._geometry.n_tiles):
            r0, r1, c0, c1 = self._geometry.tile_window(index)
            self._shards.append(
                _Shard(
                    index // self._shard_cols,
                    index % self._shard_cols,
                    r0,
                    c0,
                    np.ascontiguousarray(labels[r0:r1, c0:c1], dtype=np.int64),
                )
            )
        # Orders tile mutation + index republish (and lazy singleton
        # builds) against each other; never held by the query path.
        self._admin_lock = new_lock("sharded.admin_lock")
        self._counter_lock = new_lock("sharded.counter_lock")
        self._fused_points = 0  # guarded-by: self._counter_lock
        self._index = TileGridIndex(  # guarded-by(writes): self._admin_lock
            self._geometry, [shard.labels for shard in self._shards]
        )
        self._fused: Optional[np.ndarray] = None  # guarded-by(writes): self._admin_lock
        self._executor: Optional[ThreadPoolExecutor] = None  # guarded-by(writes): self._admin_lock

    # -- introspection -------------------------------------------------------

    @property
    def partition(self) -> Partition:
        return self._partition

    @property
    def provenance(self) -> Dict[str, Any]:
        return dict(self._provenance)

    @property
    def n_regions(self) -> int:
        return len(self._partition)

    @property
    def shards(self) -> Tuple[int, int]:
        return (self._shard_rows, self._shard_cols)

    @property
    def backend(self) -> str:
        return "sharded"

    @property
    def points_served(self) -> int:
        """Total points answered, across every plan."""
        with self._counter_lock:
            total = self._fused_points
        return total + int(sum(shard.points_served for shard in self._shards))  # repro: ignore[lock-guarded-attrs] -- racy read of monotonic ints is deliberate: stats may lag, never tear (CPython int loads are atomic)

    def describe(self) -> Dict[str, Any]:
        grid = self._grid
        return {
            "n_regions": len(self._partition),
            "grid_rows": grid.rows,
            "grid_cols": grid.cols,
            "bounds": [
                grid.bounds.min_x, grid.bounds.min_y, grid.bounds.max_x, grid.bounds.max_y,
            ],
            "backend": "sharded",
            "shards": [self._shard_rows, self._shard_cols],
            "shard_versions": self.shard_versions(),
            "parallel_threshold": self._config.parallel_threshold,
            "index_bytes": int(sum(shard.labels.nbytes for shard in self._shards)),
            "provenance": dict(self._provenance),
        }

    def shard_loads(self) -> np.ndarray:
        """Points served per shard so far (row-major shard order).

        Per-shard attribution is exact for the scatter plans (sequential
        and parallel), whose bucketing touches every shard's counter under
        its own lock.  The fused plan answers from the merged index
        without visiting shards, so its traffic lands in the deployment
        total (:attr:`points_served`) only — shard loads are a routing
        statistic of scatter dispatch, which is also what a distributed
        deployment would export.
        """
        return np.array([shard.points_served for shard in self._shards], dtype=int)  # repro: ignore[lock-guarded-attrs] -- racy read of monotonic ints is deliberate: stats may lag, never tear (CPython int loads are atomic)

    def shard_versions(self) -> List[List[int]]:
        """Per-tile serving version (1-based), as a ``shard_rows x shard_cols`` grid."""
        versions: List[List[int]] = []
        for i in range(self._shard_rows):
            row = []
            for j in range(self._shard_cols):
                shard = self._shards[i * self._shard_cols + j]
                with shard.lock.read():
                    row.append(shard.version)
            versions.append(row)
        return versions

    def tile_window(self, row: int, col: int) -> Tuple[int, int, int, int]:
        """Cell window ``(r0, r1, c0, c1)`` of the tile at ``(row, col)``."""
        return self._geometry.tile_window(self._shard_index(row, col))

    def compose_labels(self) -> np.ndarray:
        """The effective full label grid, tile swaps applied, freshly built.

        The export path the multiprocess workers use: one contiguous
        int64 ``rows x cols`` array assembled from the *current* index
        snapshot, so a worker publication after :meth:`swap_shard` ships
        the swapped tile, not the construction-time partition.  Allocates
        fresh on every call — publication-time only, never a query path.
        """
        # returns: int64[r, c]
        index = self._index  # one snapshot; tiles of a single publish
        labels = np.empty((self._grid.rows, self._grid.cols), dtype=np.int64)
        for tile in range(self._geometry.n_tiles):
            r0, r1, c0, c1 = self._geometry.tile_window(tile)
            labels[r0:r1, c0:c1] = index.tile_view(tile)
        return labels

    def __repr__(self) -> str:
        return (
            f"ShardedDeployment({len(self._partition)} regions over "
            f"{self._grid.rows}x{self._grid.cols} grid, "
            f"{self._shard_rows}x{self._shard_cols} shards)"
        )

    # -- dispatch plumbing ----------------------------------------------------

    def _resolve_strict(self, strict: Optional[bool]) -> bool:
        return self._config.strict if strict is None else strict

    def _resolve_plan(self, plan: Optional[str], n_points: int) -> str:
        if plan is None:
            plan = "auto"
        if plan not in DISPATCH_PLANS:
            raise ServingError(
                f"unknown dispatch plan {plan!r}; expected one of {DISPATCH_PLANS}"
            )
        threshold = self._config.parallel_threshold
        if plan == "auto":
            # Small batches: sequential scatter (no pool, no fused build,
            # exact per-shard accounting).  Large batches: the tiles are
            # co-resident, so the fused single-gather is the fastest
            # correct plan in-process.
            return "sequential" if n_points < threshold else "fused"
        if plan == "parallel" and n_points < threshold:
            return "sequential"  # below the threshold the pool cannot pay
        return plan

    def _pool(self) -> ThreadPoolExecutor:
        executor = self._executor
        if executor is None:
            with self._admin_lock:
                if self._executor is None:
                    workers = self._config.shard_workers or min(
                        self._geometry.n_tiles, os.cpu_count() or 1
                    )
                    self._executor = ThreadPoolExecutor(
                        max_workers=max(1, workers),
                        thread_name_prefix="repro-shard",
                    )
                executor = self._executor
        return executor

    def close(self) -> None:
        """Shut down the bucket-gather pool (idempotent; queries still work
        sequentially afterwards only if no parallel plan is requested)."""
        with self._admin_lock:
            if self._executor is not None:
                self._executor.shutdown(wait=True)
                self._executor = None

    def _fused_grid(self) -> np.ndarray:
        fused = self._fused
        if fused is None:
            with self._admin_lock:
                if self._fused is None:
                    self._fused = self._build_fused(self._index)
                fused = self._fused
        return fused

    def _build_fused(self, index: TileGridIndex) -> np.ndarray:
        """The sentinel-padded merged grid of one index snapshot.

        One extra row and column hold ``-1``: non-strict
        ``Grid.locate_many`` reports off-map points as ``(-1, -1)``, and
        numpy's negative indexing wraps them into the sentinel border —
        so the fused gather needs no inside-mask, no ``np.full`` result
        scaffold and no masked scatter, which is precisely why it
        undercuts the monolithic server's non-strict path.
        """
        # returns: int64[u, v] contiguous
        grid = self._grid
        fused = np.full((grid.rows + 1, grid.cols + 1), -1, dtype=np.int64)
        for tile_index in range(self._geometry.n_tiles):
            r0, r1, c0, c1 = self._geometry.tile_window(tile_index)
            fused[r0:r1, c0:c1] = index.tile_view(tile_index)
        return fused

    def _charge_shards(self, counts: np.ndarray) -> None:
        for tile_index in np.flatnonzero(counts):  # repro: ignore[hot-path-loop] -- bounded by n_tiles (a handful), not by batch size
            shard = self._shards[int(tile_index)]
            with shard.counter_lock:
                shard.points_served += int(counts[tile_index])

    # -- batched point location ----------------------------------------------

    def locate_points(
        self,
        xs: np.ndarray,
        ys: np.ndarray,
        strict: Optional[bool] = None,
        plan: Optional[str] = None,
    ) -> np.ndarray:
        """Region index per coordinate pair, dispatched over the shard tiles.

        Same contract as :meth:`PartitionServer.locate_points` (``-1`` for
        off-map points in non-strict mode,
        :class:`~repro.exceptions.GridError` in strict mode), and the same
        bits out of every ``plan`` (see the module docstring for what the
        plans trade).
        """
        # returns: int64
        xs = np.asarray(xs, dtype=float)
        ys = np.asarray(ys, dtype=float)
        if xs.shape != ys.shape:
            raise GridError("xs and ys must have the same shape")
        plan = self._resolve_plan(plan, xs.size)
        strict_mode = self._resolve_strict(strict)

        if plan == "fused":
            rows, cols = self._grid.locate_many(xs, ys, strict=strict_mode)
            located = self._fused_grid()[rows, cols]
            with self._counter_lock:
                self._fused_points += int(located.size)
            return located

        # Scatter plans flatten the batch; remember the input shape so
        # scalars (0-d) and multi-dimensional batches round-trip like the
        # server's.
        shape = xs.shape
        xs, ys = xs.reshape(-1), ys.reshape(-1)
        if strict_mode:
            rows, cols = self._grid.locate_many(xs, ys)
            inside = None
        else:
            rows, cols = self._grid.locate_many(xs, ys, strict=False)
            inside = rows >= 0
            if bool(np.all(inside)):
                inside = None
            else:
                rows, cols = rows[inside], cols[inside]

        index = self._index  # one immutable snapshot for the whole batch
        located = np.empty(rows.shape, dtype=int)
        if rows.size:
            executor = self._pool() if plan == "parallel" else None
            counts = index.gather_into(rows, cols, located, executor=executor)
            self._charge_shards(counts)

        if inside is None:
            return located.reshape(shape)
        result = np.full(xs.shape, -1, dtype=int)
        result[inside] = located
        return result.reshape(shape)

    def region_counts(
        self, xs: np.ndarray, ys: np.ndarray, strict: Optional[bool] = None
    ) -> np.ndarray:
        """Points per region for a coordinate batch (off-map points dropped)."""
        return region_counts_from_assignment(
            self.locate_points(xs, ys, strict=strict), len(self._partition)
        )

    def range_query(self, query: BoundingBox) -> List[int]:
        """Regions intersecting ``query`` (delegates to the source partition).

        Range queries read region extents, not the sharded cell index, so
        they are answered exactly like the monolithic server's.  Per-tile
        label swaps deliberately do not reach here: a swapped tile changes
        *point location* only, while region extents stay those of the
        source partition (the documented scope of shard-level hot-swap).
        """
        if self._range_server is None:
            self._range_server = PartitionServer(
                self._partition, provenance=self._provenance, config=self._config
            )
        return self._range_server.range_query(query)

    # -- per-tile hot-swap -----------------------------------------------------

    def _shard_index(self, row: int, col: int) -> int:
        row, col = int(row), int(col)
        if not (0 <= row < self._shard_rows and 0 <= col < self._shard_cols):
            raise ServingError(
                f"no shard ({row}, {col}) in a "
                f"{self._shard_rows}x{self._shard_cols} tiling; rows span "
                f"0..{self._shard_rows - 1} and cols 0..{self._shard_cols - 1}"
            )
        return row * self._shard_cols + col

    def _validate_tile_labels(self, shard: _Shard, labels: Any) -> np.ndarray:
        labels = np.asarray(labels)
        expected = shard.labels.shape
        if labels.shape != expected:
            raise ServingError(
                f"shard ({shard.row}, {shard.col}) serves a "
                f"{expected[0]}x{expected[1]} cell tile; replacement labels "
                f"have shape {tuple(labels.shape)}"
            )
        if labels.dtype.kind not in "iu":
            raise ServingError(
                f"tile labels must be integer region indices, got dtype "
                f"{labels.dtype}"
            )
        tile = np.ascontiguousarray(labels, dtype=np.int64)
        if tile.size:
            lo, hi = int(tile.min()), int(tile.max())
            if lo < -1 or hi >= len(self._partition):
                raise ServingError(
                    f"tile labels must be -1 (uncovered) or region indices "
                    f"below {len(self._partition)}, got range [{lo}, {hi}]"
                )
        return tile

    def _republish(self) -> None:
        """Rebuild and atomically publish the serving indexes (admin lock held).

        Copy-on-write: the new :class:`TileGridIndex` (and, when already
        built, the fused grid) is assembled from the now-active tile
        versions and published by reference assignment — queries that
        grabbed the old references keep answering from a consistent
        pre-swap snapshot.
        """
        index = TileGridIndex(
            self._geometry, [shard.labels for shard in self._shards]
        )
        self._index = index  # repro: ignore[lock-guarded-attrs] -- caller holds _admin_lock (see docstring); checked lexically, not interprocedurally
        if self._fused is not None:
            self._fused = self._build_fused(index)  # repro: ignore[lock-guarded-attrs] -- caller holds _admin_lock (see docstring); checked lexically, not interprocedurally

    def swap_shard(self, row: int, col: int, labels: np.ndarray) -> Dict[str, Any]:
        """Atomically replace the labels of the tile at ``(row, col)``.

        The new labels (validated against the tile's cell window and the
        partition's region count) are appended to the tile's version
        history and become its serving version; every other tile keeps
        serving untouched, and in-flight queries finish against the
        pre-swap snapshot.  Returns the tile's version summary.
        """
        shard = self._shards[self._shard_index(row, col)]
        tile = self._validate_tile_labels(shard, labels)
        with self._admin_lock:
            version = shard.swap(tile)
            self._republish()
        return {
            "shard": [int(row), int(col)],
            "shard_version": version,
            "shard_versions_total": shard.n_versions,
        }

    def rollback_shard(self, row: int, col: int) -> Dict[str, Any]:
        """Step the tile at ``(row, col)`` back one version (its history stays).

        Raises :class:`~repro.exceptions.ServingError` when the tile is
        already serving its original labels.  A later :meth:`swap_shard`
        appends to the history as usual.
        """
        shard = self._shards[self._shard_index(row, col)]
        with self._admin_lock:
            version = shard.rollback()
            self._republish()
        return {
            "shard": [int(row), int(col)],
            "shard_version": version,
            "shard_versions_total": shard.n_versions,
        }
