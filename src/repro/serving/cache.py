"""LRU cache of loaded partition artifacts.

A serving process answers queries against a handful of hot partitions but
may have hundreds of artifact bundles on disk.  :class:`ArtifactCache`
keeps the most recently used ones resident as ready-to-query
:class:`~repro.serving.server.PartitionServer` instances and reloads
evicted ones on demand, so callers address partitions by bundle path and
never think about load lifecycles.
"""

from __future__ import annotations

from collections import OrderedDict
from pathlib import Path
from typing import Any, Callable, Dict, Mapping, Optional

from ..config import ServingConfig
from .server import PartitionServer


class ArtifactCache:
    """Bounded, least-recently-used cache of :class:`PartitionServer` instances.

    Parameters
    ----------
    config:
        ``config.cache_entries`` bounds the resident server count and the
        config is handed to every server the cache constructs (so its
        ``strict`` default applies uniformly).
    spec_validator:
        Forwarded to :meth:`PartitionServer.from_artifact` on every cache
        miss, so bundles loaded through the cache get the same embedded-spec
        re-validation as ones opened directly (pass
        :meth:`repro.api.specs.RunSpec.from_dict`, or build the cache with
        :func:`repro.api.open_cache` which does).
    """

    def __init__(
        self,
        config: ServingConfig | None = None,
        spec_validator: Optional[Callable[[Mapping[str, Any]], Any]] = None,
    ) -> None:
        self._config = config or ServingConfig()
        self._spec_validator = spec_validator
        self._servers: "OrderedDict[str, PartitionServer]" = OrderedDict()
        self._hits = 0
        self._misses = 0
        self._evictions = 0

    @property
    def max_entries(self) -> int:
        return self._config.cache_entries

    def _key(self, path: str | Path) -> str:
        return str(Path(path).resolve())

    def get(self, path: str | Path) -> PartitionServer:
        """The server for the bundle at ``path``, loading it on first use."""
        key = self._key(path)
        server = self._servers.get(key)
        if server is not None:
            self._hits += 1
            self._servers.move_to_end(key)
            return server
        self._misses += 1
        server = PartitionServer.from_artifact(
            path, config=self._config, spec_validator=self._spec_validator
        )
        self._servers[key] = server
        while len(self._servers) > self._config.cache_entries:
            self._servers.popitem(last=False)
            self._evictions += 1
        return server

    def invalidate(self, path: str | Path) -> bool:
        """Drop the cached server for ``path`` (e.g. after a rebuild)."""
        return self._servers.pop(self._key(path), None) is not None

    def clear(self) -> None:
        self._servers.clear()

    @property
    def stats(self) -> Dict[str, int]:
        """Cache effectiveness counters (monotonic until :meth:`clear`)."""
        return {
            "hits": self._hits,
            "misses": self._misses,
            "evictions": self._evictions,
            "resident": len(self._servers),
        }

    def __len__(self) -> int:
        return len(self._servers)

    def __contains__(self, path: object) -> bool:
        if not isinstance(path, (str, Path)):
            return False
        return self._key(path) in self._servers
