"""LRU cache of loaded partition artifacts.

A serving process answers queries against a handful of hot partitions but
may have hundreds of artifact bundles on disk.  :class:`ArtifactCache`
keeps the most recently used ones resident as ready-to-query
:class:`~repro.serving.server.PartitionServer` instances and reloads
evicted ones on demand, so callers address partitions by bundle path and
never think about load lifecycles.

Every entry remembers the bundle's on-disk fingerprint (member mtimes and
sizes) from load time; a hit whose fingerprint no longer matches — the
artifact was rebuilt at the same path — is reloaded transparently instead
of serving stale regions, no manual :meth:`~ArtifactCache.invalidate`
required.

The cache is **thread-safe**: one mutex guards every LRU mutation and the
stats counters, so parallel ``get``/``invalidate`` calls from a threaded
transport can never corrupt the ordering dict, over-fill the cache, or
lose a counter update.  Misses load the bundle *while holding the lock* —
deliberately: two threads missing on the same path must produce one load,
and bundle loads are rare next to hits (which cost one dict move under
the same lock).
"""

from __future__ import annotations

from collections import OrderedDict
from pathlib import Path
from typing import Any, Callable, Dict, Mapping, Optional, Tuple

from ..config import ServingConfig
from ..exceptions import PartitionError
from ..io.artifacts import bundle_fingerprint
from .locks import new_rlock
from .server import PartitionServer


class ArtifactCache:
    """Bounded, least-recently-used cache of :class:`PartitionServer` instances.

    Parameters
    ----------
    config:
        ``config.cache_entries`` bounds the resident server count and the
        config is handed to every server the cache constructs (so its
        ``strict`` and ``backend`` defaults apply uniformly).
    spec_validator:
        Forwarded to :meth:`PartitionServer.from_artifact` on every cache
        miss, so bundles loaded through the cache get the same embedded-spec
        re-validation as ones opened directly (pass
        :meth:`repro.api.specs.RunSpec.from_dict`; the engine built by
        :func:`repro.api.open_engine` does).
    """

    def __init__(
        self,
        config: ServingConfig | None = None,
        spec_validator: Optional[Callable[[Mapping[str, Any]], Any]] = None,
    ) -> None:
        self._config = config or ServingConfig()
        self._spec_validator = spec_validator
        self._servers: "OrderedDict[str, Tuple[PartitionServer, Tuple[int, ...]]]" = (  # guarded-by: self._mutex
            OrderedDict()
        )
        # RLock, not Lock: PartitionServer.from_artifact may re-enter the
        # interpreter arbitrarily, and a reentrant guard keeps any future
        # internal call back into the cache from deadlocking.
        self._mutex = new_rlock("cache.mutex")
        self._hits = 0  # guarded-by: self._mutex
        self._misses = 0  # guarded-by: self._mutex
        self._evictions = 0  # guarded-by: self._mutex
        self._reloads = 0  # guarded-by: self._mutex

    @property
    def max_entries(self) -> int:
        return self._config.cache_entries

    def _key(self, path: str | Path) -> str:
        return str(Path(path).resolve())

    def get(self, path: str | Path) -> PartitionServer:
        """The server for the bundle at ``path``, loading it on first use.

        A resident server whose bundle changed on disk since it was loaded
        (different member mtimes/sizes) counts as a miss and is reloaded,
        so rebuilding an artifact at the same path takes effect on the next
        ``get`` instead of after a manual :meth:`invalidate`.  A bundle
        that was *deleted* keeps serving from the resident server — the
        loaded data is still valid and availability beats failing; the
        load error surfaces only once the entry is evicted or invalidated.
        """
        key = self._key(path)
        with self._mutex:
            entry = self._servers.get(key)
            current = None
            if entry is not None:
                server, fingerprint = entry
                try:
                    current = bundle_fingerprint(key)  # repro: ignore[blocking-under-lock] -- stat-only staleness probe; holding the mutex keeps the stamp paired with the resident entry
                except PartitionError:
                    current = fingerprint  # bundle gone; resident copy still serves
                if fingerprint == current:
                    self._hits += 1
                    self._servers.move_to_end(key)
                    return server
                self._reloads += 1
                del self._servers[key]
            self._misses += 1
            # On a reload, reuse the stamp taken above (stat'ing again could
            # pair a newer stamp with the content about to be loaded); the
            # pre-load stamp keeps the conservative direction either way.
            fingerprint = current if current is not None else bundle_fingerprint(key)  # repro: ignore[blocking-under-lock] -- deliberate: misses load under the mutex so racing cold gets produce one load, not N
            server = PartitionServer.from_artifact(  # repro: ignore[blocking-under-lock] -- deliberate: misses load under the mutex so racing cold gets produce one load, not N
                key, config=self._config, spec_validator=self._spec_validator
            )
            self._servers[key] = (server, fingerprint)
            while len(self._servers) > self._config.cache_entries:
                self._servers.popitem(last=False)
                self._evictions += 1
            return server

    def invalidate(self, path: str | Path) -> bool:
        """Drop the cached server for ``path`` (e.g. after a rebuild)."""
        with self._mutex:
            return self._servers.pop(self._key(path), None) is not None

    def clear(self) -> None:
        with self._mutex:
            self._servers.clear()

    @property
    def stats(self) -> Dict[str, float]:
        """Cache effectiveness counters (monotonic until :meth:`clear`).

        ``hit_ratio`` is hits over total lookups (0.0 before the first
        lookup); ``reloads`` counts hits turned into misses by an on-disk
        bundle change.
        """
        with self._mutex:
            lookups = self._hits + self._misses
            return {
                "hits": self._hits,
                "misses": self._misses,
                "evictions": self._evictions,
                "reloads": self._reloads,
                "resident": len(self._servers),
                "hit_ratio": self._hits / lookups if lookups else 0.0,
            }

    def __len__(self) -> int:
        with self._mutex:
            return len(self._servers)

    def __contains__(self, path: object) -> bool:
        if not isinstance(path, (str, Path)):
            return False
        with self._mutex:
            return self._key(path) in self._servers
