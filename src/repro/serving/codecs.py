"""Wire codecs: how a locate batch crosses a transport, behind a registry.

PR 5 hardwired one marshalling choice into the HTTP layer (JSON envelope
with dense base64 arrays) and its client.  This module lifts that choice
into a pluggable **codec**: a stateless object that encodes a dense
locate batch into payload bytes and back, selected by name through
:data:`repro.registry.CODECS` (``register_codec``, mirroring the
partitioner/backend registries).  Two codecs ship:

* ``json+b64`` — the PR 5/6 wire format, byte-for-byte: a JSON object
  with ``xs_b64``/``ys_b64`` (base64 of raw little-endian float64) in and
  ``regions_b64`` (base64 little-endian int64) out.  Every server since
  PR 5 speaks it; it remains the HTTP transport's format and the
  fallback when capability negotiation fails.
* ``binary`` — raw little-endian buffers with a fixed-layout prefix, no
  base64 and no JSON on the hot path.  A 10^5-point batch costs a
  struct pack plus two buffer writes instead of ~2 ms of base64 and a
  JSON scan; it is what the persistent-socket wire transport
  (:mod:`repro.serving.wire`) negotiates by default.

Both codecs canonicalise to the same :class:`DenseLocate` value and are
property-tested bit-exact against each other — NaN payloads, signed
infinities and off-map ``-1`` sentinels survive either encoding
unchanged, because both move the raw IEEE-754/int64 bytes.

The base64 array helpers (``encode_b64_array``/``decode_b64_array``)
moved here from :mod:`repro.serving.http`, which re-exports them as
deprecation shims.
"""

from __future__ import annotations

import base64
import binascii
import json
import struct
from typing import Any, Dict, List, NamedTuple, Optional, Tuple, Union

import numpy as np

from ..exceptions import ConfigurationError
from ..registry import CODECS, register_codec
from ..validation import check_version

__all__ = [
    "Codec",
    "JsonB64Codec",
    "BinaryCodec",
    "DenseLocate",
    "encode_b64_array",
    "decode_b64_array",
    "resolve_codec",
    "codec_names",
    "require_finite_coords",
]


def require_finite_coords(request: "DenseLocate") -> None:
    """Reject NaN/infinite coordinates, the servers' shared gate.

    Codecs themselves move any IEEE-754 payload bit-exactly (the
    property tests rely on that); whether non-finite coordinates are
    *servable* is the server's decision, and every transport front makes
    the same one the typed protocol does: reject, typed.
    """
    xs, ys = request.xs, request.ys
    if (xs.size and not np.isfinite(xs).all()) or \
            (ys.size and not np.isfinite(ys).all()):
        raise ConfigurationError("locate coordinates must be finite")


def encode_b64_array(values: np.ndarray, dtype: str) -> str:
    """Base64 of ``values`` as raw ``dtype`` (an explicit-endian spec like
    ``"<f8"``), the dense encoding's payload form."""
    return base64.b64encode(
        np.ascontiguousarray(values, dtype=dtype).tobytes()
    ).decode("ascii")


def decode_b64_array(text: Any, dtype: str, field: str) -> np.ndarray:
    """Decode a dense-encoding field back to an array, failing typed.

    The result is a zero-copy *read-only* ``np.frombuffer`` view over the
    decoded bytes.  That is deliberate: the locate hot path only ever
    reads the coordinates (``asarray`` downstream is a no-op at matching
    dtype), so a defensive ``.copy()`` here would be the single largest
    allocation on the dense path.  Callers that need a writable result
    materialise one at the end (the client's final ``np.concatenate``
    always allocates fresh) instead of copying every chunk on entry.
    """
    if not isinstance(text, str):
        raise ConfigurationError(f"{field} must be a base64 string")
    try:
        raw = base64.b64decode(text, validate=True)
    except (binascii.Error, ValueError) as exc:
        raise ConfigurationError(f"{field} is not valid base64: {exc}") from exc
    itemsize = np.dtype(dtype).itemsize
    if len(raw) % itemsize:
        raise ConfigurationError(
            f"{field} decodes to {len(raw)} bytes, not a multiple of the "
            f"{itemsize}-byte {dtype} item size"
        )
    return np.frombuffer(raw, dtype=dtype)


class DenseLocate(NamedTuple):
    """A decoded dense locate request, canonical across codecs.

    ``xs``/``ys`` are 1-D float64 arrays (possibly read-only zero-copy
    views over the transport buffer); ``strict``/``version`` carry the
    request's overrides exactly as the typed protocol does (``None`` =
    server default / active version).
    """

    deployment: str
    xs: np.ndarray
    ys: np.ndarray
    strict: Optional[bool]
    version: Optional[Union[int, str]]


def _checked_dense(
    deployment: Any,
    xs: np.ndarray,
    ys: np.ndarray,
    strict: Any,
    version: Any,
) -> DenseLocate:
    """Validate decoded fields into a :class:`DenseLocate`, failing typed."""
    # array: xs float64[n]
    # array: ys float64[n]
    if not isinstance(deployment, str) or not deployment:
        raise ConfigurationError("locate needs a non-empty 'deployment'")
    if len(xs) != len(ys):
        raise ConfigurationError(
            f"locate needs paired coordinates, got {len(xs)} xs and "
            f"{len(ys)} ys"
        )
    if strict is not None and not isinstance(strict, bool):
        raise ConfigurationError("locate 'strict' must be a bool or null")
    check_version(version)
    return DenseLocate(deployment, xs, ys, strict, version)


class Codec:
    """One way to move a dense locate batch across a transport.

    Codecs are stateless: ``encode_request``/``decode_request`` move the
    ``(deployment, xs, ys, strict, version)`` tuple, and
    ``encode_response``/``decode_response`` move the answering
    ``(version, regions)`` pair.  Coordinates travel as float64 and
    assignments as int64, both little-endian, in every codec — what
    differs is only the envelope around those bytes.  Subclasses register
    themselves with :func:`repro.registry.register_codec`; the registered
    name is what ``ServingClient(transport=...)`` and the wire
    handshake's capability negotiation accept.
    """

    #: Canonical registry name (set by subclasses).
    name = "abstract"

    #: Whether request payloads are JSON (control-frame compatible).
    json_payload = False

    def encode_request(
        self,
        deployment: str,
        xs: np.ndarray,
        ys: np.ndarray,
        strict: Optional[bool] = None,
        version: Optional[Union[int, str]] = None,
    ) -> bytes:
        raise NotImplementedError

    def decode_request(self, payload: bytes) -> DenseLocate:
        raise NotImplementedError

    def encode_response(
        self, deployment: str, version: int, regions: np.ndarray
    ) -> bytes:
        raise NotImplementedError

    def decode_response(self, payload: bytes) -> Tuple[int, np.ndarray]:
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}({self.name!r})"


@register_codec(
    "json+b64",
    aliases=("json", "dense", "http"),
    summary="JSON envelope with dense base64 float64/int64 arrays "
    "(the PR 5 HTTP wire format; universal fallback)",
)
class JsonB64Codec(Codec):
    """The JSON + dense-base64 format every server since PR 5 speaks.

    Request and response bytes are byte-for-byte the HTTP dense locate
    body and answer, so the HTTP transport routes through this codec and
    old servers/clients interoperate unchanged.
    """

    name = "json+b64"
    json_payload = True

    def encode_request(
        self,
        deployment: str,
        xs: np.ndarray,
        ys: np.ndarray,
        strict: Optional[bool] = None,
        version: Optional[Union[int, str]] = None,
    ) -> bytes:
        # Assembled by hand rather than json.dumps: the base64 alphabet
        # never needs escaping, and the escaping scan over megabytes of
        # it is measurable at benchmark batch sizes.
        body = (
            '{"deployment":' + json.dumps(deployment)
            + ',"xs_b64":"' + encode_b64_array(xs, "<f8")
            + '","ys_b64":"' + encode_b64_array(ys, "<f8") + '"'
            + ("" if strict is None else ',"strict":' + json.dumps(strict))
            + ("" if version is None else ',"version":' + json.dumps(version))
            + "}"
        )
        return body.encode("utf-8")

    def decode_request(self, payload: bytes) -> DenseLocate:
        data = self._parse_object(payload)
        return self.decode_request_fields(data)

    @staticmethod
    def decode_request_fields(data: Dict[str, Any]) -> DenseLocate:
        """Decode an already-parsed dense locate JSON object.

        Split out so the HTTP handler, which parses the body once for
        routing, can hand the dict over without re-serialising it.
        """
        allowed = {"kind", "deployment", "xs_b64", "ys_b64", "strict", "version"}
        unknown = sorted(set(data) - allowed)
        if unknown:
            raise ConfigurationError(
                f"unknown locate field(s) {', '.join(map(repr, unknown))}; the "
                f"dense encoding expects a subset of {tuple(sorted(allowed))} "
                "(mixing xs/ys lists with xs_b64/ys_b64 is not allowed)"
            )
        if data.get("kind", "locate") != "locate":
            raise ConfigurationError(
                f"locate got kind {data.get('kind')!r}, expected 'locate'"
            )
        xs = decode_b64_array(data.get("xs_b64"), "<f8", "xs_b64")
        ys = decode_b64_array(data.get("ys_b64"), "<f8", "ys_b64")
        return _checked_dense(
            data.get("deployment"), xs, ys, data.get("strict"), data.get("version")
        )

    def encode_response(
        self, deployment: str, version: int, regions: np.ndarray
    ) -> bytes:
        body = (
            '{"deployment":' + json.dumps(deployment)
            + ',"version":' + str(int(version))
            + ',"kind":"locate","regions_b64":"'
            + encode_b64_array(regions, "<i8")
            + '","n":' + str(int(regions.size)) + "}"
        )
        return body.encode("utf-8")

    def decode_response(self, payload: bytes) -> Tuple[int, np.ndarray]:
        data = self._parse_object(payload)
        version = data.get("version")
        if isinstance(version, bool) or not isinstance(version, int):
            raise ConfigurationError(
                f"dense locate response 'version' must be an integer, "
                f"got {version!r}"
            )
        regions = decode_b64_array(data.get("regions_b64"), "<i8", "regions_b64")
        return version, regions

    @staticmethod
    def _parse_object(payload: bytes) -> Dict[str, Any]:
        try:
            data = json.loads(payload)
        except (json.JSONDecodeError, UnicodeDecodeError) as exc:
            raise ConfigurationError(
                f"payload is not valid JSON: {exc}"
            ) from exc
        if not isinstance(data, dict):
            raise ConfigurationError(
                f"payload must be a JSON object, got {type(data).__name__}"
            )
        return data


#: Fixed-layout prefixes of the binary codec's payloads (little-endian,
#: no padding).  Request: name length, strict code, version code, point
#: count — then the name bytes, then xs, then ys.  Response: answering
#: version, assignment count — then the assignments.
_REQ_PREFIX = struct.Struct("<HBqI")
_RES_PREFIX = struct.Struct("<qI")

#: ``strict`` field codes (None = server default).
_STRICT_CODES = {None: 0, True: 1, False: 2}
_STRICT_BY_CODE = {code: value for value, code in _STRICT_CODES.items()}

#: ``version`` field codes: 0 = active (None), -1 = the "latest" alias,
#: positive = that pinned version.
_VERSION_ACTIVE = 0
_VERSION_LATEST = -1


@register_codec(
    "binary",
    aliases=("bin", "raw"),
    summary="length-prefixed raw little-endian float64/int64 buffers "
    "(no base64/JSON on the hot path; needs the wire transport)",
)
class BinaryCodec(Codec):
    """Raw-buffer framing: the request *is* the coordinate memory.

    Encoding a batch is one 15-byte struct pack plus the name and two
    buffer copies; decoding is three ``np.frombuffer`` views (zero-copy,
    read-only) over the received payload.  All multi-byte fields are
    little-endian, so the format is identical across hosts.
    """

    name = "binary"

    def encode_request(
        self,
        deployment: str,
        xs: np.ndarray,
        ys: np.ndarray,
        strict: Optional[bool] = None,
        version: Optional[Union[int, str]] = None,
    ) -> bytes:
        name_bytes = deployment.encode("utf-8")
        if len(name_bytes) > 0xFFFF:
            raise ConfigurationError(
                f"deployment name of {len(name_bytes)} UTF-8 bytes exceeds "
                "the binary codec's 65535-byte name field"
            )
        try:
            strict_code = _STRICT_CODES[strict]
        except KeyError:
            raise ConfigurationError(
                "locate 'strict' must be a bool or None"
            ) from None
        check_version(version)
        if version is None:
            version_code = _VERSION_ACTIVE
        elif version == "latest":
            version_code = _VERSION_LATEST
        else:
            version_code = int(version)
        xs = np.ascontiguousarray(xs, dtype="<f8")
        ys = np.ascontiguousarray(ys, dtype="<f8")
        if len(xs) != len(ys):
            raise ConfigurationError(
                f"locate needs paired coordinates, got {len(xs)} xs and "
                f"{len(ys)} ys"
            )
        prefix = _REQ_PREFIX.pack(
            len(name_bytes), strict_code, version_code, len(xs)
        )
        return b"".join((prefix, name_bytes, xs.tobytes(), ys.tobytes()))

    def decode_request(self, payload: bytes) -> DenseLocate:
        if len(payload) < _REQ_PREFIX.size:
            raise ConfigurationError(
                f"binary locate request of {len(payload)} bytes is shorter "
                f"than its {_REQ_PREFIX.size}-byte prefix"
            )
        name_len, strict_code, version_code, n = _REQ_PREFIX.unpack_from(payload)
        offset = _REQ_PREFIX.size
        expected = offset + name_len + 16 * n
        if len(payload) != expected:
            raise ConfigurationError(
                f"binary locate request is {len(payload)} bytes but its "
                f"prefix declares {expected} (name {name_len} B + "
                f"{n} coordinate pairs)"
            )
        try:
            deployment = payload[offset:offset + name_len].decode("utf-8")
        except UnicodeDecodeError as exc:
            raise ConfigurationError(
                f"binary locate deployment name is not UTF-8: {exc}"
            ) from exc
        offset += name_len
        if strict_code not in _STRICT_BY_CODE:
            raise ConfigurationError(
                f"binary locate strict code {strict_code} is not 0/1/2"
            )
        version: Optional[Union[int, str]]
        if version_code == _VERSION_ACTIVE:
            version = None
        elif version_code == _VERSION_LATEST:
            version = "latest"
        elif version_code > 0:
            version = version_code
        else:
            raise ConfigurationError(
                f"binary locate version code {version_code} is not 0, -1 or "
                "a positive version"
            )
        xs = np.frombuffer(payload, dtype="<f8", count=n, offset=offset)
        ys = np.frombuffer(payload, dtype="<f8", count=n, offset=offset + 8 * n)
        return _checked_dense(
            deployment, xs, ys, _STRICT_BY_CODE[strict_code], version
        )

    def encode_response(
        self, deployment: str, version: int, regions: np.ndarray
    ) -> bytes:
        regions = np.ascontiguousarray(regions, dtype="<i8")
        prefix = _RES_PREFIX.pack(int(version), regions.size)
        return b"".join((prefix, regions.tobytes()))

    def decode_response(self, payload: bytes) -> Tuple[int, np.ndarray]:
        if len(payload) < _RES_PREFIX.size:
            raise ConfigurationError(
                f"binary locate response of {len(payload)} bytes is shorter "
                f"than its {_RES_PREFIX.size}-byte prefix"
            )
        version, n = _RES_PREFIX.unpack_from(payload)
        expected = _RES_PREFIX.size + 8 * n
        if len(payload) != expected:
            raise ConfigurationError(
                f"binary locate response is {len(payload)} bytes but its "
                f"prefix declares {expected} ({n} assignments)"
            )
        regions = np.frombuffer(payload, dtype="<i8", offset=_RES_PREFIX.size)
        return version, regions


def resolve_codec(name: Union[str, Codec]) -> Codec:
    """The codec instance for ``name`` (canonical or alias).

    Accepts an already-constructed :class:`Codec` unchanged, so APIs that
    take ``transport=``/``codec=`` can accept either spelling.  Unknown
    names raise :class:`~repro.exceptions.ConfigurationError` with a
    did-you-mean hint, like every registry in :mod:`repro.registry`.
    """
    if isinstance(name, Codec):
        return name
    return CODECS.resolve(name).obj()


def codec_names() -> List[str]:
    """Canonical names of every registered codec, registration order."""
    return list(CODECS.names())
