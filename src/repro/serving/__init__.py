"""Partition serving: batched queries against stored partitions.

The packages below this one build partitions; this package serves them.
Its unit of work is "answer queries against a stored partition", not
"build one":

* :class:`~repro.serving.server.PartitionServer` — fully vectorised batch
  point-location and range queries straight off a partition's dense label
  grid (``-1`` for off-map points in the default non-strict mode).
* :class:`~repro.serving.cache.ArtifactCache` — an LRU cache that keeps hot
  artifact bundles resident as ready-to-query servers.

Pair with :mod:`repro.io.artifacts` (the on-disk bundle format) and the
``build`` / ``query`` CLI verbs.
"""

from .cache import ArtifactCache
from .server import PartitionServer

__all__ = ["PartitionServer", "ArtifactCache"]
