"""Partition serving: the read path behind the build side.

The packages below this one build partitions; this package serves them.
Its unit of work is "answer queries against stored partitions", not
"build one":

* :class:`~repro.serving.engine.ServingEngine` — the front door: named
  deployments with version history, atomic hot-swap and rollback, a
  ``latest`` alias, per-deployment stats, and a persistable manifest.
* :mod:`~repro.serving.protocol` — the typed query vocabulary
  (:class:`LocateRequest` / :class:`RangeRequest` / :class:`QueryResult`),
  JSON-round-trippable so any transport can front the engine.
* :mod:`~repro.serving.http` / :mod:`~repro.serving.client` — the first
  such transport: :class:`ServingHTTPServer`, a stdlib-only threaded HTTP
  service speaking the protocol as JSON (CLI verb ``serve``), and
  :class:`ServingClient`, its connection-reusing, batching, retrying
  typed client (``transport="auto"`` negotiates the binary wire upgrade
  via ``GET /v1/capabilities``).
* :mod:`~repro.serving.codecs` — the pluggable dense-payload codec layer
  (``json+b64`` and ``binary``, registered in
  :data:`repro.registry.CODECS`), shared verbatim by the HTTP dense
  encoding and the wire protocol so the two cannot drift.
* :mod:`~repro.serving.wire` — the length-prefixed binary framing over
  persistent sockets (:class:`WireServer` / :class:`WireConnection`),
  raw little-endian float64/int64 on the hot path, JSON frames for the
  control plane, capability negotiation on connect.
* :mod:`~repro.serving.workers` — ``serve --workers N``:
  :class:`WorkerPool` forks wire workers off one shared listening
  socket, all answering from read-only shared-memory label grids;
  hot-swap republishes a segment and bumps a version, never copies.
* :class:`~repro.serving.server.PartitionServer` — fully vectorised batch
  point-location and range queries over one partition (``-1`` for off-map
  points in the default non-strict mode).
* :mod:`~repro.serving.backends` — pluggable point-location indexes
  behind the server (dense label grid, sparse band index), registered in
  :data:`repro.registry.BACKENDS`.
* :class:`~repro.serving.sharding.ShardedDeployment` — one partition
  served as a tile grid of independent shard indexes, batch queries
  scatter/gathered across them (sequential, thread-pooled or fused
  dispatch plans) with per-tile versioned hot-swap
  (``swap_shard``/``rollback_shard``).
* :class:`~repro.serving.cache.ArtifactCache` — an LRU cache that keeps
  hot artifact bundles resident as ready-to-query servers and reloads
  bundles that changed on disk.

Pair with :mod:`repro.io.artifacts` (the on-disk bundle format) and the
``build`` / ``deploy`` / ``deployments`` / ``query`` CLI verbs.
"""

from .backends import DenseGridLocator, LocatorBackend, SparseBandLocator
from .cache import ArtifactCache
from .client import ServingClient
from .codecs import BinaryCodec, Codec, JsonB64Codec, codec_names, resolve_codec
from .engine import ServingEngine
from .http import ServingHTTPServer, serve_engine
from .locks import ReadWriteLock
from .protocol import (
    LATEST,
    PROTOCOL_VERSION,
    Envelope,
    LocateRequest,
    QueryResult,
    RangeRequest,
    ShardRollbackRequest,
    ShardSwapRequest,
)
from .server import PartitionServer
from .sharding import ShardedDeployment, TileGridIndex, build_tile_index
from .wire import DEFAULT_WIRE_PORT, WireConnection, WireServer
from .workers import WorkerPool

__all__ = [
    "ServingEngine",
    "PartitionServer",
    "ShardedDeployment",
    "TileGridIndex",
    "build_tile_index",
    "ArtifactCache",
    "LocateRequest",
    "RangeRequest",
    "QueryResult",
    "ShardSwapRequest",
    "ShardRollbackRequest",
    "Envelope",
    "PROTOCOL_VERSION",
    "LATEST",
    "LocatorBackend",
    "DenseGridLocator",
    "SparseBandLocator",
    "Codec",
    "JsonB64Codec",
    "BinaryCodec",
    "codec_names",
    "resolve_codec",
    "ServingHTTPServer",
    "ServingClient",
    "serve_engine",
    "WireServer",
    "WireConnection",
    "DEFAULT_WIRE_PORT",
    "WorkerPool",
    "ReadWriteLock",
]
