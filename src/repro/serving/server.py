"""Batched point-location and range queries over a (stored) partition.

The build side of the system produces a :class:`~repro.spatial.partition.Partition`
once; the serve side answers millions of "which neighborhood is this point
in?" questions against it.  :class:`PartitionServer` is that serve side: it
holds the partition's dense cell->region label grid and answers fully
vectorised batch queries from it —

* :meth:`locate_points` — continuous coordinates -> region indices in one
  vectorised pass through the configured locator backend, ``-1`` for
  off-map points in the default non-strict mode;
* :meth:`locate_cells` — the same for pre-discretised cell coordinates;
* :meth:`range_query` — regions intersecting a box, found by slicing the
  label grid down to the box's cell window instead of scanning every region.

Point location is answered by a pluggable backend
(:mod:`repro.serving.backends`, selected by
:attr:`~repro.config.ServingConfig.backend`): the default dense label-grid
index, or the memory-lean sparse band index.  Servers are cheap to
construct from an in-memory partition and cheap to restore from an
artifact bundle (:meth:`from_artifact`), which is how the
:class:`~repro.serving.engine.ServingEngine` and the
:class:`~repro.serving.cache.ArtifactCache` use them.
"""

from __future__ import annotations

from pathlib import Path
from typing import Any, Callable, Dict, List, Mapping, Optional, Sequence

import numpy as np

from ..config import ServingConfig
from ..io.artifacts import load_partition_artifact
from ..registry import BACKENDS
from ..spatial.geometry import BoundingBox
from ..spatial.partition import Partition, masked_cell_lookup


def region_counts_from_assignment(assignment: np.ndarray, n_regions: int) -> np.ndarray:
    """Points per region for a locate-style assignment (off-map ``-1`` dropped).

    Shared by every front-end exposing ``region_counts`` —
    :class:`PartitionServer` and
    :class:`~repro.serving.sharding.ShardedDeployment` — so the aggregation
    semantics cannot drift between them.
    """
    # array: assignment int64
    # returns: int64[k]
    counts = np.zeros(n_regions, dtype=int)
    located = assignment >= 0
    np.add.at(counts, assignment[located], 1)
    return counts


class PartitionServer:
    """Read-only query front-end over one partition.

    Parameters
    ----------
    partition:
        The partition to serve.
    provenance:
        Optional build metadata (surfaced by :meth:`describe`; filled in
        automatically when the server is restored from an artifact).
    config:
        Serving knobs; ``config.strict`` sets the default out-of-map
        behaviour of the locate methods and ``config.backend`` selects the
        point-location index from the locator-backend registry.
    """

    def __init__(
        self,
        partition: Partition,
        provenance: Dict[str, Any] | None = None,
        config: ServingConfig | None = None,
    ) -> None:
        self._partition = partition
        self._grid = partition.grid
        self._labels = partition.label_grid
        self._provenance = dict(provenance or {})
        self._config = config or ServingConfig()
        # Resolve the backend eagerly (unknown names fail at construction)
        # but build its index lazily: servers opened only for their
        # partition/provenance — sharding, range-only use — never pay for
        # an index they do not query.
        self._backend_entry = BACKENDS.resolve(self._config.backend)
        self._index: Any = None
        self._spec: Any = None

    @property
    def _backend(self) -> Any:
        if self._index is None:
            self._index = self._backend_entry.obj(self._partition)
        return self._index

    @classmethod
    def from_artifact(
        cls,
        path: str | Path,
        config: ServingConfig | None = None,
        spec_validator: Optional[Callable[[Mapping[str, Any]], Any]] = None,
    ) -> "PartitionServer":
        """Restore a server from an artifact bundle written by the build side.

        ``spec_validator`` re-validates the run spec embedded in the
        bundle's provenance (pass :meth:`repro.api.specs.RunSpec.from_dict`,
        or deploy through :func:`repro.api.open_engine` which does).  A bundle whose
        spec no longer validates — unknown method, impossible parameters —
        fails here instead of silently serving unidentifiable regions;
        bundles without an embedded spec load unchanged.
        """
        artifact = load_partition_artifact(path)
        server = cls(artifact.partition, provenance=artifact.provenance, config=config)
        spec_dict = artifact.spec_dict
        if spec_validator is not None and spec_dict is not None:
            server._spec = spec_validator(spec_dict)
        return server

    # -- introspection -------------------------------------------------------

    @property
    def partition(self) -> Partition:
        return self._partition

    @property
    def provenance(self) -> Dict[str, Any]:
        return dict(self._provenance)

    @property
    def spec(self) -> Any:
        """The validated run spec this server serves, when one was loaded.

        ``None`` unless :meth:`from_artifact` was given a ``spec_validator``
        and the bundle embedded a spec.
        """
        return self._spec

    @property
    def n_regions(self) -> int:
        return len(self._partition)

    @property
    def backend(self) -> str:
        """Canonical name of the locator backend answering point queries."""
        return self._backend_entry.name

    def describe(self) -> Dict[str, Any]:
        """One-line-able summary of what this server is serving."""
        grid = self._grid
        return {
            "n_regions": len(self._partition),
            "grid_rows": grid.rows,
            "grid_cols": grid.cols,
            "bounds": [
                grid.bounds.min_x, grid.bounds.min_y, grid.bounds.max_x, grid.bounds.max_y,
            ],
            "backend": self._backend_entry.name,
            # None until a locate query builds the index — describing a
            # server must stay cheap and must not defeat the lazy build.
            "index_bytes": (
                self._index.memory_bytes() if self._index is not None else None
            ),
            "provenance": dict(self._provenance),
        }

    def __repr__(self) -> str:
        return (
            f"PartitionServer({len(self._partition)} regions over "
            f"{self._grid.rows}x{self._grid.cols} grid, "
            f"{self._backend_entry.name} backend)"
        )

    # -- batched point location ------------------------------------------------

    def _resolve_strict(self, strict: bool | None) -> bool:
        return self._config.strict if strict is None else strict

    def locate_points(
        self, xs: np.ndarray, ys: np.ndarray, strict: bool | None = None
    ) -> np.ndarray:
        """Region index for every coordinate pair, in one vectorised pass.

        In non-strict mode (the default), coordinates outside the map — or
        inside an uncovered cell of an incomplete partition — come back as
        ``-1``.  In strict mode, off-map coordinates raise
        :class:`~repro.exceptions.GridError`, matching ``Grid.locate_many``.
        """
        # returns: int64
        xs = np.asarray(xs, dtype=float)
        ys = np.asarray(ys, dtype=float)
        if self._resolve_strict(strict):
            rows, cols = self._grid.locate_many(xs, ys)
            return self._backend.locate_cells(rows, cols)
        rows, cols = self._grid.locate_many(xs, ys, strict=False)
        inside = rows >= 0
        if bool(np.all(inside)):
            return self._backend.locate_cells(rows, cols)
        result = np.full(xs.shape, -1, dtype=int)
        result[inside] = self._backend.locate_cells(rows[inside], cols[inside])
        return result

    def locate_cells(
        self, rows: Sequence[int], cols: Sequence[int], strict: bool | None = None
    ) -> np.ndarray:
        """Region index for every grid-cell coordinate pair.

        Non-strict mode maps out-of-grid cells to ``-1``; strict mode raises
        — the same contract as
        :meth:`~repro.spatial.partition.Partition.assign` (both route
        through :func:`~repro.spatial.partition.masked_cell_lookup`),
        answered by the configured backend instead of the dense label grid.
        """
        return masked_cell_lookup(
            rows,
            cols,
            self._grid.rows,
            self._grid.cols,
            self._resolve_strict(strict),
            self._backend.locate_cells,
        )

    # -- range queries ----------------------------------------------------------

    def range_query(self, query: BoundingBox) -> List[int]:
        """Indices of all regions whose extent intersects ``query``.

        Semantically identical to :func:`repro.spatial.queries.range_query`
        (closed boxes: touching counts, region order preserved), but instead
        of testing every region it slices the label grid down to the cell
        window covering the query box and reads the candidate region indices
        off the slice.  The window is widened by one cell on each side so
        boxes that exactly touch a cell boundary cannot lose a neighbor to
        floating-point rounding; candidates then pass the exact
        ``bounds.intersects`` test, so no false positives survive.  Cost is
        proportional to the window area plus the handful of candidates, not
        to the total region count.
        """
        grid = self._grid
        bounds = grid.bounds
        if not bounds.intersects(query):
            return []
        row_lo = int(np.floor((query.min_y - bounds.min_y) / grid.cell_height)) - 1
        row_hi = int(np.floor((query.max_y - bounds.min_y) / grid.cell_height)) + 2
        col_lo = int(np.floor((query.min_x - bounds.min_x) / grid.cell_width)) - 1
        col_hi = int(np.floor((query.max_x - bounds.min_x) / grid.cell_width)) + 2
        row_lo, col_lo = max(row_lo, 0), max(col_lo, 0)
        row_hi, col_hi = min(row_hi, grid.rows), min(col_hi, grid.cols)
        if row_lo >= row_hi or col_lo >= col_hi:
            return []
        candidates = np.unique(self._labels[row_lo:row_hi, col_lo:col_hi])
        regions = self._partition.regions
        return [
            int(index)
            for index in candidates
            if index >= 0 and regions[index].bounds.intersects(query)
        ]

    # -- aggregates --------------------------------------------------------------

    def region_counts(
        self, xs: np.ndarray, ys: np.ndarray, strict: bool | None = None
    ) -> np.ndarray:
        """Points per region for a coordinate batch (off-map points dropped)."""
        return region_counts_from_assignment(
            self.locate_points(xs, ys, strict=strict), len(self._partition)
        )
