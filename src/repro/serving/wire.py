"""The wire transport: length-prefixed frames over persistent sockets.

HTTP pays per-request header parsing and (for the dense encoding) a
base64 round-trip on every megabyte of coordinates.  This module is the
transport that does neither: a client dials once, the two sides negotiate
a codec (:mod:`repro.serving.codecs`), and every subsequent exchange is
one **frame** — an 8-byte little-endian header followed by the payload::

    offset  size  field
    0       4     payload length (u32; 0 .. MAX_FRAME_BYTES)
    4       1     frame kind (FRAME_JSON / FRAME_LOCATE / FRAME_RESULT /
                  FRAME_ERROR)
    5       1     wire framing version (WIRE_VERSION = 1)
    6       2     reserved (must be 0)

``FRAME_LOCATE``/``FRAME_RESULT`` carry the binary codec's raw-buffer
payloads — the hot path, no JSON and no base64.  ``FRAME_JSON`` carries
UTF-8 JSON for everything cold: the ``hello`` handshake,
``healthz``/``stats``/``deployments`` introspection, typed protocol
requests (an :class:`~repro.serving.protocol.Envelope` dict — ``range``
queries and list-form ``locate``), and the ``json+b64`` codec's dense
payloads when that codec was negotiated.  ``FRAME_ERROR`` carries the
same ``{"error": {"type", "message"}}`` body the HTTP transport sends,
so both transports map failures to the same typed exceptions.

Admin operations (deploy/rollback/shard swaps) are **refused** on the
wire: the multiprocess workers serve read-only snapshots, so mutations
must go through the HTTP admin plane, which owns the engine and
republishes to workers.  The refusal is a typed error naming that plane.

Framing discipline: a frame whose declared length exceeds
``MAX_FRAME_BYTES`` is refused *unread* — the server answers with an
error frame and closes (the payload cannot be skipped safely), exactly
like the HTTP layer's oversized-body handling.  A connection that ends
mid-frame raises :class:`~repro.exceptions.TransportError` ("truncated
frame"); a connection that ends cleanly between frames is just EOF.

:class:`WireServer` is the in-process front (accept thread + one handler
thread per connection, sharing the caller's engine); ``serve_connection``
is the per-connection loop it shares with the forked workers of
:mod:`repro.serving.workers`.  :class:`WireConnection` is the client
side :class:`~repro.serving.client.ServingClient` builds its binary
transport on.
"""

from __future__ import annotations

import json
import logging
import socket
import struct
import threading
from typing import Any, Dict, Iterable, Optional, Sequence, Tuple, Union

import numpy as np

from .. import exceptions
from ..exceptions import (
    ConfigurationError,
    ReproError,
    ServingError,
    TransportError,
)
from .codecs import (
    BinaryCodec,
    Codec,
    JsonB64Codec,
    codec_names,
    require_finite_coords,
    resolve_codec,
)
from .locks import new_lock
from .protocol import PROTOCOL_VERSION, Envelope

__all__ = [
    "WireServer",
    "WireConnection",
    "serve_connection",
    "send_frame",
    "recv_frame",
    "error_to_exception",
    "FRAME_JSON",
    "FRAME_LOCATE",
    "FRAME_RESULT",
    "FRAME_ERROR",
    "MAX_FRAME_BYTES",
    "WIRE_VERSION",
    "DEFAULT_WIRE_PORT",
]

logger = logging.getLogger(__name__)

#: The port ``serve --wire binary`` binds by default (one above the HTTP
#: port, so the pair can be started without choosing anything).
DEFAULT_WIRE_PORT = 8351

#: Wire framing version byte.  Independent of the JSON protocol version:
#: this one covers the 8-byte header layout itself.
WIRE_VERSION = 1

#: Frame kinds.
FRAME_JSON = 1    #: UTF-8 JSON payload (control plane, json+b64 codec)
FRAME_LOCATE = 2  #: binary codec locate request
FRAME_RESULT = 3  #: binary codec locate response
FRAME_ERROR = 4   #: UTF-8 JSON ``{"error": ...}`` payload

#: Largest payload either side will accept — same bound as the HTTP
#: transport's ``MAX_BODY_BYTES``, for the same reason: bigger batches
#: must be chunked by the client's batcher.
MAX_FRAME_BYTES = 64 * 1024 * 1024

_HEADER = struct.Struct("<IBBH")

_BINARY = BinaryCodec()
_JSON_CODEC = JsonB64Codec()


def error_to_exception(error: Dict[str, Any]) -> ReproError:
    """The typed exception a wire/HTTP JSON error body maps back to.

    The server sends the engine exception's class name; anything that is
    not a known :class:`ReproError` subclass (old server, foreign proxy)
    degrades to :class:`ServingError` rather than being swallowed.
    """
    name = error.get("type", "")
    message = error.get("message", "serving request failed")
    exc_type = getattr(exceptions, str(name), None)
    if isinstance(exc_type, type) and issubclass(exc_type, ReproError):
        return exc_type(message)
    return ServingError(f"{name}: {message}" if name else message)


# -- framing primitives -------------------------------------------------------


def send_frame(sock: socket.socket, kind: int, payload: bytes) -> None:
    """Write one frame (header + payload) in a single ``sendall``."""
    if len(payload) > MAX_FRAME_BYTES:
        raise TransportError(
            f"frame payload of {len(payload)} bytes exceeds the "
            f"{MAX_FRAME_BYTES}-byte frame limit; split the batch "
            "(ServingClient does this automatically)"
        )
    header = _HEADER.pack(len(payload), kind, WIRE_VERSION, 0)
    sock.sendall(header + payload)


def _recv_exact(sock: socket.socket, n: int, what: str) -> bytes:
    """Read exactly ``n`` bytes or raise a truncation :class:`TransportError`."""
    pieces = []
    remaining = n
    while remaining:
        try:
            chunk = sock.recv(min(remaining, 1 << 20))
        except OSError as exc:
            raise TransportError(f"connection failed reading {what}: {exc}") from exc
        if not chunk:
            raise TransportError(
                f"connection closed mid-frame: {n - remaining} of {n} "
                f"{what} bytes received (truncated frame)"
            )
        pieces.append(chunk)
        remaining -= len(chunk)
    return pieces[0] if len(pieces) == 1 else b"".join(pieces)


def recv_frame(sock: socket.socket) -> Optional[Tuple[int, bytes]]:
    """Read one frame; ``None`` on clean EOF before any header byte.

    Raises :class:`~repro.exceptions.TransportError` for mid-frame EOF
    (truncation) and :class:`~repro.exceptions.ConfigurationError` for a
    header this side refuses to honour (oversized payload, unknown
    framing version) — after which the stream position is unusable and
    the connection must be closed.
    """
    try:
        first = sock.recv(_HEADER.size)
    except OSError as exc:
        raise TransportError(f"connection failed reading frame header: {exc}") from exc
    if not first:
        return None
    if len(first) < _HEADER.size:
        first += _recv_exact(sock, _HEADER.size - len(first), "frame header")
    length, kind, version, reserved = _HEADER.unpack(first)
    if version != WIRE_VERSION:
        raise ConfigurationError(
            f"frame declares wire framing version {version}; this build "
            f"speaks {WIRE_VERSION}"
        )
    if reserved != 0:
        raise ConfigurationError(
            f"frame reserved field is {reserved}, expected 0 (corrupt or "
            "incompatible stream)"
        )
    if length > MAX_FRAME_BYTES:
        raise ConfigurationError(
            f"frame declares a {length}-byte payload, over the "
            f"{MAX_FRAME_BYTES}-byte limit; split the batch "
            "(ServingClient does this automatically)"
        )
    payload = _recv_exact(sock, length, "frame payload") if length else b""
    return kind, payload


def _json_payload(data: Dict[str, Any]) -> bytes:
    return json.dumps(data).encode("utf-8")


def _parse_json_frame(payload: bytes) -> Dict[str, Any]:
    try:
        data = json.loads(payload)
    except (json.JSONDecodeError, UnicodeDecodeError) as exc:
        raise ConfigurationError(f"frame payload is not valid JSON: {exc}") from exc
    if not isinstance(data, dict):
        raise ConfigurationError(
            f"frame payload must be a JSON object, got {type(data).__name__}"
        )
    return data


# -- server side --------------------------------------------------------------


def _negotiate(
    sock: socket.socket, offered: Sequence[str], info: Dict[str, Any]
) -> Optional[Codec]:
    """Answer the client's ``hello``; the codec both sides speak, or None.

    The client leads with its codec preference list; the server picks
    the first entry it also serves.  No mutual codec (or a malformed
    hello) is answered with an error frame and ``None`` — the caller
    closes the connection.
    """
    frame = recv_frame(sock)
    if frame is None:
        return None
    kind, payload = frame
    if kind != FRAME_JSON:
        raise ConfigurationError(
            f"expected a JSON hello frame to open the connection, got "
            f"frame kind {kind}"
        )
    hello = _parse_json_frame(payload)
    if hello.get("op") != "hello":
        raise ConfigurationError(
            f"expected op 'hello' to open the connection, got "
            f"{hello.get('op')!r}"
        )
    version = hello.get("v", PROTOCOL_VERSION)
    if version != PROTOCOL_VERSION:
        raise ConfigurationError(
            f"client speaks protocol version {version!r}; this server "
            f"speaks {PROTOCOL_VERSION}"
        )
    wanted = hello.get("codecs")
    if not isinstance(wanted, list) or not all(
        isinstance(name, str) for name in wanted
    ):
        raise ConfigurationError("hello 'codecs' must be a list of codec names")
    served = {resolve_codec(name).name for name in offered}
    for name in wanted:
        try:
            codec = resolve_codec(name)
        except ReproError:
            continue  # a codec this build does not know; try the next
        if codec.name in served:
            send_frame(
                sock,
                FRAME_JSON,
                _json_payload(
                    {
                        "op": "hello",
                        "v": PROTOCOL_VERSION,
                        "codec": codec.name,
                        "server": info,
                    }
                ),
            )
            return codec
    raise ServingError(
        f"no mutual codec: client offered {wanted}, server serves "
        f"{sorted(served)}"
    )


def _handle_locate(sock: socket.socket, engine: Any, codec: Codec, payload: bytes,
                   binary: bool) -> None:
    """Decode one dense locate, dispatch it, answer in the same codec."""
    request = (_BINARY if binary else _JSON_CODEC).decode_request(payload)
    require_finite_coords(request)
    version, assignment = engine.locate_batch(
        request.deployment,
        request.xs,
        request.ys,
        strict=request.strict,
        version=request.version,
    )
    if binary:
        send_frame(
            sock, FRAME_RESULT, _BINARY.encode_response(request.deployment, version, assignment)
        )
    else:
        send_frame(
            sock,
            FRAME_JSON,
            _JSON_CODEC.encode_response(request.deployment, version, assignment),
        )


_ADMIN_OPS = ("swap-shard", "rollback-shard", "deploy", "rollback")


def _handle_control(sock: socket.socket, engine: Any, codec: Codec,
                    data: Dict[str, Any], info: Dict[str, Any]) -> None:
    """One JSON control exchange (everything that is not a dense locate)."""
    op = data.get("op")
    if op is not None:
        if op == "healthz":
            send_frame(
                sock,
                FRAME_JSON,
                _json_payload({"status": "ok", "deployments": len(engine)}),
            )
        elif op == "stats":
            send_frame(sock, FRAME_JSON, _json_payload(engine.stats))
        elif op == "deployments":
            send_frame(
                sock,
                FRAME_JSON,
                _json_payload({"deployments": engine.deployments()}),
            )
        else:
            raise ServingError(
                f"unknown wire op {op!r}; known: healthz, stats, deployments"
            )
        return
    if "xs_b64" in data or "ys_b64" in data:
        # The json+b64 codec's dense locate, arriving as a JSON frame.
        request = JsonB64Codec.decode_request_fields(data)
        require_finite_coords(request)
        version, assignment = engine.locate_batch(
            request.deployment,
            request.xs,
            request.ys,
            strict=request.strict,
            version=request.version,
        )
        send_frame(
            sock,
            FRAME_JSON,
            _JSON_CODEC.encode_response(request.deployment, version, assignment),
        )
        return
    if data.get("kind") in _ADMIN_OPS:
        raise ServingError(
            f"admin operation {data.get('kind')!r} is not served on the "
            "wire transport (workers hold read-only snapshots); use the "
            "HTTP admin plane, which republishes to workers"
        )
    envelope = Envelope.parse(data)
    if envelope.op == "locate":
        result = engine.locate(envelope.payload)
    elif envelope.op == "range":
        result = engine.range_query(envelope.payload)
    else:  # pragma: no cover - _ADMIN_OPS filtered every other kind above
        raise ServingError(f"unknown wire request kind {envelope.op!r}")
    send_frame(sock, FRAME_JSON, result.to_json().encode("utf-8"))


def serve_connection(
    sock: socket.socket,
    engine: Any,
    codecs: Sequence[str] = ("binary", "json+b64"),
    info: Optional[Dict[str, Any]] = None,
) -> None:
    """The per-connection loop: handshake, then frames until EOF.

    ``engine`` is anything with the read-side engine surface
    (``locate_batch``, ``locate``, ``range_query``, ``stats``,
    ``deployments``, ``__len__``) — the in-process
    :class:`~repro.serving.engine.ServingEngine` under
    :class:`WireServer`, or a forked worker's shared-memory snapshot
    (:class:`~repro.serving.workers.WorkerState`).

    Engine-level failures (unknown deployment, off-map strict batch, a
    malformed-but-fully-read payload) answer an error frame and keep the
    connection alive — they are deterministic, like HTTP error bodies.
    Framing-level failures (oversized/truncated/incoherent frames) answer
    an error frame when possible and close, because the stream position
    is no longer trustworthy.  The caller owns closing ``sock``.
    """
    info = dict(info or {})
    sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
    try:
        codec = _negotiate(sock, codecs, info)
    except (ReproError, OSError) as exc:
        _try_send_error(sock, exc)
        return
    if codec is None:
        return
    binary = codec.name == "binary"
    while True:
        try:
            frame = recv_frame(sock)
        except TransportError:
            return  # peer vanished mid-frame; nothing to answer
        except ConfigurationError as exc:
            _try_send_error(sock, exc)
            return
        if frame is None:
            return
        kind, payload = frame
        try:
            if kind == FRAME_LOCATE:
                if not binary:
                    raise ConfigurationError(
                        "binary locate frame on a connection that "
                        f"negotiated the {codec.name!r} codec"
                    )
                _handle_locate(sock, engine, codec, payload, binary=True)
            elif kind == FRAME_JSON:
                _handle_control(
                    sock, engine, codec, _parse_json_frame(payload), info
                )
            else:
                raise ConfigurationError(
                    f"unexpected frame kind {kind} from a client"
                )
        except (BrokenPipeError, ConnectionResetError):
            return
        except OSError:
            return
        except ReproError as exc:
            # Deterministic request failure: answer and keep serving.
            if not _try_send_error(sock, exc):
                return
        except Exception as exc:  # repro: ignore[exception-discipline] -- dispatch boundary: every failure must become an error frame, not a dropped connection
            logger.exception("unhandled error serving wire frame")
            if not _try_send_error(sock, exc):
                return


def _try_send_error(sock: socket.socket, exc: BaseException) -> bool:
    """Answer an error frame; False when the connection is already gone."""
    body = {"error": {"type": type(exc).__name__, "message": str(exc)}}
    try:
        send_frame(sock, FRAME_ERROR, _json_payload(body))
    except OSError:
        return False
    return True


class WireServer:
    """The in-process wire front: accept loop + a thread per connection.

    The zero-worker sibling of the multiprocess pool in
    :mod:`repro.serving.workers`: same framing, same handshake, same
    engine surface — but connections are served by threads inside the
    caller's process, sharing its live :class:`ServingEngine` (so
    hot-swaps are visible immediately, with no publication step).

    ``port=0`` picks an ephemeral port; read :attr:`port` after
    construction.  Use :meth:`serve_background` + :meth:`close` (or the
    context manager), mirroring :class:`ServingHTTPServer`.
    """

    def __init__(
        self,
        engine: Any,
        host: str = "127.0.0.1",
        port: int = 0,
        codecs: Sequence[str] = ("binary", "json+b64"),
        info: Optional[Dict[str, Any]] = None,
    ) -> None:
        self.engine = engine
        self.codecs = tuple(resolve_codec(name).name for name in codecs)
        self._info = dict(info or {})
        self._info.setdefault("mode", "in-process")
        self._listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self._listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        self._listener.bind((host, port))
        self._listener.listen(128)
        self._accept_thread: Optional[threading.Thread] = None
        self._closing = threading.Event()
        self._conn_lock = new_lock("wire.server.connections")
        self._connections: set = set()  # guarded-by(writes): self._conn_lock

    @property
    def host(self) -> str:
        return self._listener.getsockname()[0]

    @property
    def port(self) -> int:
        return self._listener.getsockname()[1]

    def serve_background(self) -> "WireServer":
        """Start the accept loop on a daemon thread and return."""
        if self._accept_thread is not None:
            raise ServingError("wire server is already running")
        self._accept_thread = threading.Thread(
            target=self._accept_loop, name="repro-wire-accept", daemon=True
        )
        self._accept_thread.start()
        return self

    def _accept_loop(self) -> None:
        while not self._closing.is_set():
            try:
                conn, _ = self._listener.accept()
            except OSError:
                return  # listener closed
            thread = threading.Thread(
                target=self._serve_one, args=(conn,),
                name="repro-wire-conn", daemon=True,
            )
            thread.start()

    def _serve_one(self, conn: socket.socket) -> None:
        with self._conn_lock:
            self._connections.add(conn)
        try:
            serve_connection(conn, self.engine, self.codecs, self._info)
        finally:
            with self._conn_lock:
                self._connections.discard(conn)
            try:
                conn.close()
            except OSError:  # pragma: no cover - close is best-effort
                pass

    def close(self) -> None:
        """Stop accepting, drop live connections, release the socket."""
        self._closing.set()
        try:
            # shutdown() wakes an accept() blocked in another thread;
            # close() alone leaves it blocked until the join timeout.
            self._listener.shutdown(socket.SHUT_RDWR)
        except OSError:
            pass
        try:
            self._listener.close()
        except OSError:  # pragma: no cover - close is best-effort
            pass
        with self._conn_lock:
            connections = list(self._connections)
            self._connections.clear()
        for conn in connections:
            try:
                conn.close()
            except OSError:  # pragma: no cover - close is best-effort
                pass
        if self._accept_thread is not None:
            self._accept_thread.join(timeout=5.0)
            self._accept_thread = None

    def __enter__(self) -> "WireServer":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"WireServer({self.host}:{self.port}, codecs={self.codecs})"


# -- client side --------------------------------------------------------------


class WireConnection:
    """One persistent client connection: dial, handshake, exchange frames.

    Not thread-safe by design — the client keeps one per thread, exactly
    as it does with HTTP connections.  ``codecs`` is the preference list
    sent in the hello; the server's pick is :attr:`codec` after
    :meth:`connect`.
    """

    def __init__(
        self,
        host: str,
        port: int,
        timeout: float = 30.0,
        codecs: Sequence[str] = ("binary", "json+b64"),
    ) -> None:
        self.host = host
        self.port = int(port)
        self.timeout = float(timeout)
        self.codecs = tuple(resolve_codec(name).name for name in codecs)
        self.codec: Optional[Codec] = None
        self.server_info: Dict[str, Any] = {}
        self._sock: Optional[socket.socket] = None

    def connect(self) -> "WireConnection":
        """Dial and run the hello handshake; idempotent once connected."""
        if self._sock is not None:
            return self
        try:
            sock = socket.create_connection(
                (self.host, self.port), timeout=self.timeout
            )
            sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        except OSError as exc:
            raise TransportError(
                f"cannot connect to wire server {self.host}:{self.port}: {exc}"
            ) from exc
        try:
            send_frame(
                sock,
                FRAME_JSON,
                _json_payload(
                    {
                        "op": "hello",
                        "v": PROTOCOL_VERSION,
                        "codecs": list(self.codecs),
                    }
                ),
            )
            frame = recv_frame(sock)
            if frame is None:
                raise TransportError(
                    f"wire server {self.host}:{self.port} closed the "
                    "connection during the handshake"
                )
            kind, payload = frame
            if kind == FRAME_ERROR:
                raise error_to_exception(
                    _parse_json_frame(payload).get("error", {})
                )
            if kind != FRAME_JSON:
                raise TransportError(
                    f"unexpected frame kind {kind} answering the handshake"
                )
            hello = _parse_json_frame(payload)
            codec_name = hello.get("codec")
            if hello.get("op") != "hello" or not isinstance(codec_name, str):
                raise TransportError(
                    f"malformed handshake answer: {hello!r}"
                )
            self.codec = resolve_codec(codec_name)
            self.server_info = dict(hello.get("server") or {})
        except BaseException:  # repro: ignore[exception-discipline] -- resource guard, not a handler: a failed handshake must close the socket whatever aborted it; always re-raised
            sock.close()
            raise
        self._sock = sock
        return self

    @property
    def connected(self) -> bool:
        return self._sock is not None

    def _require_sock(self) -> socket.socket:
        if self._sock is None:
            raise TransportError("wire connection is not connected")
        return self._sock

    def locate(
        self,
        deployment: str,
        xs: np.ndarray,
        ys: np.ndarray,
        strict: Optional[bool] = None,
        version: Optional[Union[int, str]] = None,
    ) -> Tuple[int, np.ndarray]:
        """One dense locate exchange in the negotiated codec.

        Returns ``(answering version, assignments)`` — the assignments a
        zero-copy read-only view over the received frame, matching the
        HTTP client's discipline.
        """
        # returns: int64[n]
        sock = self._require_sock()
        codec = self.codec
        assert codec is not None  # connect() set it
        payload = codec.encode_request(deployment, xs, ys, strict, version)
        request_kind = FRAME_LOCATE if codec.name == "binary" else FRAME_JSON
        send_frame(sock, request_kind, payload)
        frame = recv_frame(sock)
        if frame is None:
            raise TransportError(
                "wire server closed the connection before answering"
            )
        kind, answer = frame
        if kind == FRAME_ERROR:
            raise error_to_exception(_parse_json_frame(answer).get("error", {}))
        if kind not in (FRAME_RESULT, FRAME_JSON):
            raise TransportError(f"unexpected answer frame kind {kind}")
        return codec.decode_response(answer)

    def control(self, data: Dict[str, Any]) -> Dict[str, Any]:
        """One JSON control exchange (healthz/stats/deployments/range...)."""
        sock = self._require_sock()
        send_frame(sock, FRAME_JSON, _json_payload(data))
        frame = recv_frame(sock)
        if frame is None:
            raise TransportError(
                "wire server closed the connection before answering"
            )
        kind, answer = frame
        if kind == FRAME_ERROR:
            raise error_to_exception(_parse_json_frame(answer).get("error", {}))
        if kind != FRAME_JSON:
            raise TransportError(f"unexpected answer frame kind {kind}")
        return _parse_json_frame(answer)

    def close(self) -> None:
        if self._sock is not None:
            try:
                self._sock.close()
            except OSError:  # pragma: no cover - close is best-effort
                pass
            self._sock = None
            self.codec = None

    def __enter__(self) -> "WireConnection":
        return self.connect()

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = self.codec.name if self.codec else "disconnected"
        return f"WireConnection({self.host}:{self.port}, {state})"
