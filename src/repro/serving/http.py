"""HTTP transport: the serving engine as a concurrent network service.

PR 4's typed protocol made the engine transport-agnostic; this module is
the first transport.  :class:`ServingHTTPServer` fronts a
:class:`~repro.serving.engine.ServingEngine` with a stdlib-only threaded
HTTP server (no framework, no extra dependency) speaking JSON over the
protocol objects — every request body is parsed into a
:class:`~repro.serving.protocol.LocateRequest` /
:class:`~repro.serving.protocol.RangeRequest` and every response is a
:class:`~repro.serving.protocol.QueryResult.to_dict`, so the wire format
*is* the protocol and cannot drift from the in-process API.

Endpoints
---------

==========================  =====================================================
``GET  /v1/healthz``        liveness: ``{"status": "ok", "deployments": N}``
``GET  /v1/capabilities``   transport negotiation: protocol version, codecs, wire
``GET  /v1/deployments``    the engine's deployment table (one row per name)
``GET  /v1/stats``          engine + cache counters
``POST /v1/locate``         a ``LocateRequest`` dict -> ``QueryResult`` dict
``POST /v1/range``          a ``RangeRequest`` dict -> ``QueryResult`` dict
``POST /v1/deploy``         admin: ``{"name", "artifact", "shards"?}`` hot-swap
``POST /v1/rollback``       admin: ``{"name", "version"?}``
``POST /v1/swap-shard``     admin: a ``ShardSwapRequest`` dict (one tile hot-swap)
``POST /v1/rollback-shard`` admin: a ``ShardRollbackRequest`` dict
==========================  =====================================================

The wire plane
--------------

HTTP stays the control/admin transport; the dense read path can
additionally be served over the length-prefixed binary wire protocol of
:mod:`repro.serving.wire`.  Constructing the server with a ``wire_port``
opens an in-process :class:`~repro.serving.wire.WireServer` next to the
HTTP listener; ``workers=N`` forks a
:class:`~repro.serving.workers.WorkerPool` of ``N`` processes instead,
sharing read-only label grids through ``multiprocessing.shared_memory``.
``GET /v1/capabilities`` advertises the wire endpoint and the codec list,
which is how :class:`~repro.serving.client.ServingClient` discovers it —
an old client that never asks keeps speaking plain HTTP, and an old
server without the endpoint answers 404, which a new client treats as
"JSON only".  Every successful admin mutation republishes the engine's
deployments to the workers (segment swap + version bump, never a copy);
like manifest persistence, a publish failure degrades to a
``wire_warning`` key on the success response rather than failing a
mutation that already took effect.

Admin endpoints are disabled unless the server is constructed with
``admin=True`` (the CLI's ``serve --admin``); without it they answer 403,
so a read-only service cannot be made to load arbitrary bundles over the
network.  The admin plane carries **no authentication** — it is meant for
loopback or otherwise trusted networks; the CLI warns when ``--admin`` is
combined with a non-loopback bind.  When the server was given a
``manifest_path``, a successful admin mutation re-saves the manifest, so
a restart serves what was last deployed.

Large locate batches may use the **dense encoding**: instead of ``xs`` /
``ys`` JSON number lists, the body carries ``xs_b64`` / ``ys_b64`` —
base64 of the raw little-endian float64 coordinate arrays — and the
response answers with ``regions_b64`` (base64 little-endian int64) instead
of a ``regions`` list.  The envelope stays JSON and the values are
bit-exact (binary float64 round-trips where decimal repr must be
re-parsed), but marshalling a 10^5-point batch drops from ~150 ms of
number formatting to ~2 ms of base64.  :meth:`ServingClient.locate_points`
uses it automatically; the list form remains for humans and foreign
clients.

Errors cross the wire as ``{"error": {"type": <exception class>,
"message": ...}}`` with a mapped status code;
:class:`~repro.serving.client.ServingClient` re-raises them as the same
exception classes, so network callers catch exactly what in-process
callers catch.

Concurrency: requests are handled on worker threads (a bounded pool when
``threads`` is given, one thread per connection otherwise); the engine's
per-deployment read/write locks make hot-swaps atomic under that
parallelism.
"""

from __future__ import annotations

import json
import logging
import socket
import threading
import warnings
from concurrent.futures import ThreadPoolExecutor
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Dict, Optional, Tuple, Union

import numpy as np

from ..exceptions import (
    ConfigurationError,
    GridError,
    ReproError,
    ServingError,
)
from .codecs import (
    JsonB64Codec,
    codec_names,
    require_finite_coords,
)
from .codecs import decode_b64_array as _codecs_decode_b64_array
from .codecs import encode_b64_array as _codecs_encode_b64_array
from .engine import ServingEngine
from .protocol import (
    PROTOCOL_VERSION,
    LocateRequest,
    RangeRequest,
    ShardRollbackRequest,
    ShardSwapRequest,
)
from .wire import WireServer
from .workers import WorkerPool

__all__ = [
    "ServingHTTPServer",
    "serve_engine",
    "decode_b64_array",
    "encode_b64_array",
    "DEFAULT_PORT",
]

#: The port the CLI's ``serve`` verb binds and :class:`ServingClient`
#: dials when neither is told otherwise — one constant, so a
#: default-started server and a default-constructed client always meet.
DEFAULT_PORT = 8350


def encode_b64_array(values: np.ndarray, dtype: str) -> str:
    """Base64 of ``values`` as raw ``dtype``, the dense encoding's payload.

    .. deprecated::
        The dense encoding belongs to the codec layer now; use
        :func:`repro.serving.codecs.encode_b64_array`.  This shim
        delegates there unchanged.
    """
    warnings.warn(
        "repro.serving.http.encode_b64_array is deprecated; use "
        "repro.serving.codecs.encode_b64_array",
        DeprecationWarning,
        stacklevel=2,
    )
    return _codecs_encode_b64_array(values, dtype)


def decode_b64_array(text: Any, dtype: str, field: str) -> np.ndarray:
    """Decode a dense-encoding field back to an array, failing typed.

    .. deprecated::
        The dense encoding belongs to the codec layer now; use
        :func:`repro.serving.codecs.decode_b64_array`.  This shim
        delegates there unchanged.
    """
    warnings.warn(
        "repro.serving.http.decode_b64_array is deprecated; use "
        "repro.serving.codecs.decode_b64_array",
        DeprecationWarning,
        stacklevel=2,
    )
    return _codecs_decode_b64_array(text, dtype, field)

logger = logging.getLogger(__name__)

#: Largest request body the server will read, in bytes (64 MiB — a
#: 1e6-point locate batch is ~40 MB of JSON; anything bigger should be
#: chunked by the client's batcher).
MAX_BODY_BYTES = 64 * 1024 * 1024

#: Engine exception -> HTTP status.  The class *name* travels in the JSON
#: error body and is what the client maps back; the status code is for
#: generic HTTP middleboxes and curl users.
_STATUS_BY_EXCEPTION = (
    (ConfigurationError, 400),  # malformed request payload
    (ServingError, 404),        # unknown deployment / version / bad name
    (GridError, 422),           # strict-mode off-map coordinates
    (ReproError, 409),          # broken bundle, spec mismatch, ...
)


#: The codec behind the HTTP dense encoding — stateless, shared by every
#: handler thread.  The same class serves ``json+b64`` on the wire plane.
_DENSE_CODEC = JsonB64Codec()


def _status_for(exc: BaseException) -> int:
    override = getattr(exc, "http_status", None)
    if override is not None:
        return int(override)
    for exc_type, status in _STATUS_BY_EXCEPTION:
        if isinstance(exc, exc_type):
            return status
    return 500


class _Handler(BaseHTTPRequestHandler):
    """One request: route, parse through the protocol, answer JSON.

    ``protocol_version`` is HTTP/1.1, so keep-alive connection reuse works
    (every response carries an explicit ``Content-Length``) — that is what
    makes the client's persistent connections worth having.  ``timeout``
    bounds how long an *idle* keep-alive connection may hold its worker:
    without it, N idle persistent clients would permanently starve a
    ``threads=N`` bounded pool.  A timed-out connection is simply closed;
    :class:`~repro.serving.client.ServingClient` redials transparently.
    """

    protocol_version = "HTTP/1.1"
    timeout = 30.0
    server: "ServingHTTPServer"

    # -- plumbing -------------------------------------------------------------

    def log_message(self, format: str, *args: Any) -> None:  # noqa: A002
        logger.debug("%s %s", self.address_string(), format % args)

    def _send_json(self, status: int, payload: Dict[str, Any]) -> None:
        self._send_raw_json(status, json.dumps(payload))

    def _send_raw_json(self, status: int, text: str) -> None:
        self._send_json_bytes(status, text.encode("utf-8"))

    def _send_json_bytes(self, status: int, body: bytes) -> None:
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        if self.close_connection:
            # Set when the request body was refused unread (e.g. oversize):
            # the unconsumed bytes would corrupt the keep-alive stream, so
            # the connection must not be reused.
            self.send_header("Connection", "close")
        self.end_headers()
        self.wfile.write(body)

    def _send_error_json(self, status: int, exc: BaseException) -> None:
        self._send_json(
            status,
            {"error": {"type": type(exc).__name__, "message": str(exc)}},
        )

    def _content_length(self) -> int:
        try:
            return int(self.headers.get("Content-Length") or 0)
        except ValueError as exc:
            # The body length is unknowable, so the stream cannot be
            # resynchronised — refuse and close.
            self.close_connection = True
            raise ConfigurationError(
                f"malformed Content-Length header: {exc}"
            ) from exc

    def _read_json_body(self) -> Dict[str, Any]:
        length = self._content_length()
        if length <= 0:
            raise ConfigurationError("request body must be a JSON object")
        if length > MAX_BODY_BYTES:
            # Refusing means leaving the body unread, which would poison a
            # reused connection — close it after the error response.
            self.close_connection = True
            raise ConfigurationError(
                f"request body of {length} bytes exceeds the {MAX_BODY_BYTES}"
                " byte limit; split the batch (ServingClient does this"
                " automatically)"
            )
        try:
            raw = self.rfile.read(length)
        except OSError:
            # Timed-out or broken mid-body read: the stream position is
            # unknown, so the connection must not serve another request.
            self.close_connection = True
            raise
        if len(raw) != length:
            self.close_connection = True
            raise ConfigurationError(
                f"request body was truncated ({len(raw)} of {length} bytes)"
            )
        try:
            data = json.loads(raw)
        except json.JSONDecodeError as exc:
            raise ConfigurationError(f"request body is not valid JSON: {exc}") from exc
        if not isinstance(data, dict):
            raise ConfigurationError(
                f"request body must be a JSON object, got {type(data).__name__}"
            )
        return data

    def _drain_body(self) -> None:
        """Consume an unroutable request's body so keep-alive stays usable."""
        length = self._content_length()
        if length > MAX_BODY_BYTES:
            self.close_connection = True
        elif length > 0:
            try:
                consumed = len(self.rfile.read(length))
            except OSError:
                self.close_connection = True
                raise
            if consumed != length:
                self.close_connection = True

    # -- routes ---------------------------------------------------------------

    def do_GET(self) -> None:  # noqa: N802 - http.server API
        self._dispatch(
            {
                "/v1/healthz": self._get_healthz,
                "/v1/capabilities": self._get_capabilities,
                "/v1/deployments": self._get_deployments,
                "/v1/stats": self._get_stats,
            }
        )

    def do_POST(self) -> None:  # noqa: N802 - http.server API
        self._dispatch(
            {
                "/v1/locate": self._post_locate,
                "/v1/range": self._post_range,
                "/v1/deploy": self._post_deploy,
                "/v1/rollback": self._post_rollback,
                "/v1/swap-shard": self._post_swap_shard,
                "/v1/rollback-shard": self._post_rollback_shard,
            },
            with_body=True,
        )

    def _dispatch(self, routes: Dict[str, Any], with_body: bool = False) -> None:
        handler = routes.get(self.path)
        body: Optional[Dict[str, Any]] = None
        try:
            if with_body:
                # Read the body before *any* routing or permission decision:
                # an error response sent while the body sits unread would
                # corrupt the next request on this keep-alive connection.
                if handler is not None:
                    body = self._read_json_body()
                else:
                    self._drain_body()
            else:
                # A GET carrying a body (unusual but legal) must still be
                # consumed, or its bytes would prefix the next request.
                self._drain_body()
            if handler is None:
                raise ServingError(
                    f"unknown endpoint {self.path!r}; "
                    f"known: {', '.join(sorted(routes))}"
                )
            handler(body) if with_body else handler()
        except BrokenPipeError:  # client went away mid-response
            pass
        except Exception as exc:  # repro: ignore[exception-discipline] -- dispatch boundary: every failure, expected or not, must become a JSON error response instead of a dropped connection
            status = _status_for(exc)
            if status == 500:
                logger.exception("unhandled error serving %s", self.path)
            try:
                self._send_error_json(status, exc)
            except BrokenPipeError:
                pass

    def _get_healthz(self) -> None:
        self._send_json(
            200, {"status": "ok", "deployments": len(self.server.engine)}
        )

    def _get_capabilities(self) -> None:
        """What this server can speak — the client's negotiation source.

        A server predating the wire plane has no such endpoint and
        answers 404 instead; :class:`~repro.serving.client.ServingClient`
        maps that to "JSON over HTTP only" and degrades silently.
        """
        self._send_json(200, self.server.capabilities())

    def _get_deployments(self) -> None:
        self._send_json(200, {"deployments": self.server.engine.deployments()})

    def _get_stats(self) -> None:
        self._send_json(200, self.server.engine.stats)

    def _post_locate(self, data: Dict[str, Any]) -> None:
        if "xs_b64" in data or "ys_b64" in data:
            self._post_locate_dense(data)
            return
        request = LocateRequest.from_dict(data)
        self._send_json(200, self.server.engine.locate(request).to_dict())

    def _post_locate_dense(self, data: Dict[str, Any]) -> None:
        """The dense-encoding locate: b64 float64 in, b64 int64 out.

        Functionally identical to the list form (same engine dispatch,
        same version/strict semantics, same error mapping) — only the
        coordinate marshalling differs.  Field validation and response
        assembly live in :class:`~repro.serving.codecs.JsonB64Codec`, the
        same codec the wire transport negotiates, so the two transports'
        JSON dense formats are one implementation and cannot drift.
        """
        dense = JsonB64Codec.decode_request_fields(data)
        require_finite_coords(dense)
        version, assignment = self.server.engine.locate_batch(
            dense.deployment,
            dense.xs,
            dense.ys,
            strict=dense.strict,
            version=dense.version,
        )
        self._send_json_bytes(
            200,
            _DENSE_CODEC.encode_response(dense.deployment, version, assignment),
        )

    def _post_range(self, data: Dict[str, Any]) -> None:
        request = RangeRequest.from_dict(data)
        self._send_json(200, self.server.engine.range_query(request).to_dict())

    # -- admin ----------------------------------------------------------------

    def _require_admin(self) -> None:
        if not self.server.admin:
            # 403, not 404: the endpoint exists, the deployment verbs are
            # just not enabled on this server instance.
            exc = ServingError(
                f"{self.path} requires the server to be started with admin "
                "endpoints enabled (serve --admin)"
            )
            exc.http_status = 403
            raise exc

    def _post_deploy(self, data: Dict[str, Any]) -> None:
        self._require_admin()
        unknown = sorted(set(data) - {"name", "artifact", "shards"})
        if unknown:
            raise ConfigurationError(
                f"unknown deploy field(s) {', '.join(map(repr, unknown))}; "
                "expected name, artifact and optionally shards"
            )
        if not isinstance(data.get("name"), str) or not data["name"]:
            raise ConfigurationError("deploy needs 'name': a deployment name")
        if not isinstance(data.get("artifact"), str) or not data["artifact"]:
            raise ConfigurationError(
                "deploy needs 'artifact': a bundle path on the server host"
            )
        shards = data.get("shards")
        if shards is not None:
            try:
                shards = (int(shards[0]), int(shards[1]))
            except (TypeError, ValueError, IndexError) as exc:
                raise ConfigurationError(
                    f"deploy 'shards' must be a [rows, cols] pair: {exc}"
                ) from exc
        info = self.server.engine.deploy(data["name"], data["artifact"], shards=shards)
        self._send_json(200, self._with_manifest_state(info))

    def _post_rollback(self, data: Dict[str, Any]) -> None:
        self._require_admin()
        unknown = sorted(set(data) - {"name", "version"})
        if unknown:
            raise ConfigurationError(
                f"unknown rollback field(s) {', '.join(map(repr, unknown))}; "
                "expected name and optionally version"
            )
        if not isinstance(data.get("name"), str) or not data["name"]:
            raise ConfigurationError("rollback needs 'name': a deployment name")
        info = self.server.engine.rollback(data["name"], data.get("version"))
        self._send_json(200, self._with_manifest_state(info))

    def _post_swap_shard(self, data: Dict[str, Any]) -> None:
        self._require_admin()
        request = ShardSwapRequest.from_dict(data)
        info = self.server.engine.swap_shard(
            request.deployment, request.row, request.col, request.artifact
        )
        self._send_json(200, self._with_manifest_state(info))

    def _post_rollback_shard(self, data: Dict[str, Any]) -> None:
        self._require_admin()
        request = ShardRollbackRequest.from_dict(data)
        info = self.server.engine.rollback_shard(
            request.deployment, request.row, request.col
        )
        self._send_json(200, self._with_manifest_state(info))

    def _with_manifest_state(self, info: Dict[str, Any]) -> Dict[str, Any]:
        """Persist the manifest after an admin mutation, degrading softly.

        The engine mutation already took effect; failing the request now
        would tell the operator a hot-swap did not happen when it did (and
        invite a retry that creates a spurious extra version).  A persist
        failure therefore rides along as ``manifest_warning`` on the
        success response instead — and worker publication degrades the
        same way, as ``wire_warning``: the HTTP plane already serves the
        new version, and the workers stay on their previous consistent
        snapshot rather than something torn.
        """
        try:
            self.server.publish_wire()
        except (OSError, ReproError) as exc:
            logger.warning("worker publish failed after admin mutation: %s", exc)
            info = {**info, "wire_warning": str(exc)}
        try:
            self.server.persist_manifest()
        except (OSError, ReproError) as exc:
            logger.warning("manifest save failed after admin mutation: %s", exc)
            return {**info, "manifest_warning": str(exc)}
        return info


class ServingHTTPServer(ThreadingHTTPServer):
    """A threaded HTTP front over one :class:`ServingEngine`.

    Parameters
    ----------
    engine:
        The engine to serve; it is shared with the caller (the CLI keeps
        using it for logging, tests query it directly to cross-check
        responses).
    host / port:
        Bind address.  ``port=0`` picks an ephemeral port — read the bound
        one from :attr:`server_address` (tests and benchmarks do).
    admin:
        Enable the mutating endpoints (``/v1/deploy``, ``/v1/rollback``,
        ``/v1/swap-shard``, ``/v1/rollback-shard``).
    threads:
        ``None`` (default) spawns one daemon thread per connection, like
        :class:`http.server.ThreadingHTTPServer`; a positive integer
        serves from a bounded pool of that many workers instead, which is
        the knob for a box that must not run an unbounded thread count
        under heavy traffic.
    manifest_path:
        When given, every successful admin mutation re-saves the engine's
        deployment manifest there, so hot-swaps survive a restart.
    wire_port:
        When given, additionally serve the binary wire protocol of
        :mod:`repro.serving.wire` on this port (``0`` picks an ephemeral
        one — read it back from :attr:`wire_address`).  ``None`` (the
        default) opens no wire listener unless ``workers`` asks for one.
    workers:
        ``0`` (default) serves the wire plane, if enabled, from
        in-process threads; a positive count forks that many
        :class:`~repro.serving.workers.WorkerPool` processes sharing
        read-only label grids through shared memory instead.  Implies a
        wire listener (on an ephemeral port when ``wire_port`` is
        ``None``).  Admin mutations republish to the pool automatically.

    Use :meth:`serve_background` in tests (returns once the socket is
    accepting), :meth:`serve_forever` in a real process, and :meth:`close`
    (or the context manager) to shut down either.
    """

    allow_reuse_address = True
    daemon_threads = True

    def __init__(
        self,
        engine: ServingEngine,
        host: str = "127.0.0.1",
        port: int = 0,
        admin: bool = False,
        threads: Optional[int] = None,
        manifest_path: Optional[str] = None,
        wire_port: Optional[int] = None,
        workers: int = 0,
    ) -> None:
        if threads is not None and threads < 1:
            raise ConfigurationError(f"threads must be >= 1, got {threads}")
        if workers < 0:
            raise ConfigurationError(f"workers must be >= 0, got {workers}")
        self.engine = engine
        self.admin = bool(admin)
        self.manifest_path = manifest_path
        self._pool = (
            ThreadPoolExecutor(threads, thread_name_prefix="repro-serve")
            if threads is not None
            else None
        )
        self._serve_thread: Optional[threading.Thread] = None
        self._started_serving = False
        self._wire: Optional[Union[WireServer, WorkerPool]] = None
        self.workers = int(workers)
        super().__init__((host, port), _Handler)
        try:
            if workers > 0:
                self._wire = WorkerPool(
                    engine, host=host, port=wire_port or 0, workers=workers
                ).start()
            elif wire_port is not None:
                self._wire = WireServer(
                    engine, host=host, port=wire_port
                ).serve_background()
        except BaseException:  # repro: ignore[exception-discipline] -- resource guard, not a handler: the bound HTTP socket must not leak whatever (KeyboardInterrupt included) aborts wire-plane construction; always re-raised
            # The HTTP socket is already bound; a half-constructed server
            # must not leak it.
            self.server_close()
            raise

    # -- request fan-out ------------------------------------------------------

    def process_request(self, request: socket.socket, client_address: Tuple) -> None:
        """Hand the connection to a worker.

        Bounded-pool mode submits the stdlib's own per-connection routine
        (:meth:`~socketserver.ThreadingMixIn.process_request_thread`) to
        the executor; otherwise :class:`ThreadingHTTPServer` spawns its
        usual daemon thread per connection.
        """
        if self._pool is not None:
            self._pool.submit(self.process_request_thread, request, client_address)
        else:
            super().process_request(request, client_address)

    def handle_error(self, request: socket.socket, client_address: Tuple) -> None:
        logger.debug("error handling connection from %s", client_address, exc_info=True)

    # -- lifecycle ------------------------------------------------------------

    @property
    def url(self) -> str:
        host, port = self.server_address[:2]
        return f"http://{host}:{port}"

    @property
    def wire_address(self) -> Optional[Tuple[str, int]]:
        """``(host, port)`` of the wire listener, or ``None`` without one."""
        if self._wire is None:
            return None
        return self._wire.host, self._wire.port

    def capabilities(self) -> Dict[str, Any]:
        """The ``/v1/capabilities`` body: what a client may negotiate up to."""
        wire: Optional[Dict[str, Any]] = None
        if self._wire is not None:
            wire = {
                "host": self._wire.host,
                "port": self._wire.port,
                "workers": self.workers,
            }
        return {
            "protocol_version": PROTOCOL_VERSION,
            "codecs": codec_names(),
            "wire": wire,
            "admin": self.admin,
        }

    def persist_manifest(self) -> None:
        """Re-save the deployment manifest after an admin mutation."""
        if self.manifest_path:
            self.engine.save_manifest(self.manifest_path)

    def publish_wire(self) -> None:
        """Push the engine's current deployments to the worker pool.

        A no-op without workers (the in-process wire server reads the
        engine directly and needs no publication step).
        """
        if isinstance(self._wire, WorkerPool):
            self._wire.publish()

    def serve_background(self) -> "ServingHTTPServer":
        """Run :meth:`serve_forever` on a daemon thread and return."""
        if self._serve_thread is not None:
            raise ServingError("server is already running in the background")
        # Mark before the thread starts: a close() racing this call must
        # see the flag and issue shutdown(), or the serve loop would keep
        # polling a closed socket.
        self._started_serving = True
        self._serve_thread = threading.Thread(
            # Tight poll interval: background servers are the test/benchmark
            # mode, and shutdown() waits out one poll cycle.
            target=lambda: self.serve_forever(poll_interval=0.02),
            name="repro-serve-accept",
            daemon=True,
        )
        self._serve_thread.start()
        return self

    def serve_forever(self, poll_interval: float = 0.5) -> None:
        self._started_serving = True
        super().serve_forever(poll_interval=poll_interval)

    def close(self) -> None:
        """Stop accepting, drain the worker pool, release the socket.

        Safe in every lifecycle state: ``shutdown()`` is only issued once
        ``serve_forever`` has run (calling it on a server that never
        served would wait forever on an event only the serve loop sets).
        """
        if self._started_serving:
            self.shutdown()
        if self._serve_thread is not None:
            self._serve_thread.join(timeout=5.0)
            self._serve_thread = None
        if self._pool is not None:
            self._pool.shutdown(wait=False)
        if self._wire is not None:
            self._wire.close()
            self._wire = None
        self.server_close()

    def __enter__(self) -> "ServingHTTPServer":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()


def serve_engine(
    engine: ServingEngine,
    host: str = "127.0.0.1",
    port: int = 0,
    admin: bool = False,
    threads: Optional[int] = None,
    manifest_path: Optional[str] = None,
    wire_port: Optional[int] = None,
    workers: int = 0,
) -> ServingHTTPServer:
    """Construct a :class:`ServingHTTPServer` (not yet serving).

    Thin convenience for the CLI and examples::

        server = serve_engine(engine, port=8350, admin=True, workers=2)
        print("listening on", server.url, "wire on", server.wire_address)
        server.serve_forever()          # or server.serve_background()
    """
    return ServingHTTPServer(
        engine,
        host=host,
        port=port,
        admin=admin,
        threads=threads,
        manifest_path=manifest_path,
        wire_port=wire_port,
        workers=workers,
    )
