"""HTTP transport: the serving engine as a concurrent network service.

PR 4's typed protocol made the engine transport-agnostic; this module is
the first transport.  :class:`ServingHTTPServer` fronts a
:class:`~repro.serving.engine.ServingEngine` with a stdlib-only threaded
HTTP server (no framework, no extra dependency) speaking JSON over the
protocol objects — every request body is parsed into a
:class:`~repro.serving.protocol.LocateRequest` /
:class:`~repro.serving.protocol.RangeRequest` and every response is a
:class:`~repro.serving.protocol.QueryResult.to_dict`, so the wire format
*is* the protocol and cannot drift from the in-process API.

Endpoints
---------

==========================  =====================================================
``GET  /v1/healthz``        liveness: ``{"status": "ok", "deployments": N}``
``GET  /v1/deployments``    the engine's deployment table (one row per name)
``GET  /v1/stats``          engine + cache counters
``POST /v1/locate``         a ``LocateRequest`` dict -> ``QueryResult`` dict
``POST /v1/range``          a ``RangeRequest`` dict -> ``QueryResult`` dict
``POST /v1/deploy``         admin: ``{"name", "artifact", "shards"?}`` hot-swap
``POST /v1/rollback``       admin: ``{"name", "version"?}``
``POST /v1/swap-shard``     admin: a ``ShardSwapRequest`` dict (one tile hot-swap)
``POST /v1/rollback-shard`` admin: a ``ShardRollbackRequest`` dict
==========================  =====================================================

Admin endpoints are disabled unless the server is constructed with
``admin=True`` (the CLI's ``serve --admin``); without it they answer 403,
so a read-only service cannot be made to load arbitrary bundles over the
network.  The admin plane carries **no authentication** — it is meant for
loopback or otherwise trusted networks; the CLI warns when ``--admin`` is
combined with a non-loopback bind.  When the server was given a
``manifest_path``, a successful admin mutation re-saves the manifest, so
a restart serves what was last deployed.

Large locate batches may use the **dense encoding**: instead of ``xs`` /
``ys`` JSON number lists, the body carries ``xs_b64`` / ``ys_b64`` —
base64 of the raw little-endian float64 coordinate arrays — and the
response answers with ``regions_b64`` (base64 little-endian int64) instead
of a ``regions`` list.  The envelope stays JSON and the values are
bit-exact (binary float64 round-trips where decimal repr must be
re-parsed), but marshalling a 10^5-point batch drops from ~150 ms of
number formatting to ~2 ms of base64.  :meth:`ServingClient.locate_points`
uses it automatically; the list form remains for humans and foreign
clients.

Errors cross the wire as ``{"error": {"type": <exception class>,
"message": ...}}`` with a mapped status code;
:class:`~repro.serving.client.ServingClient` re-raises them as the same
exception classes, so network callers catch exactly what in-process
callers catch.

Concurrency: requests are handled on worker threads (a bounded pool when
``threads`` is given, one thread per connection otherwise); the engine's
per-deployment read/write locks make hot-swaps atomic under that
parallelism.
"""

from __future__ import annotations

import base64
import binascii
import json
import logging
import socket
import threading
from concurrent.futures import ThreadPoolExecutor
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Dict, Optional, Tuple

import numpy as np

from ..exceptions import (
    ConfigurationError,
    GridError,
    ReproError,
    ServingError,
)
from ..validation import check_version
from .engine import ServingEngine
from .protocol import (
    LocateRequest,
    RangeRequest,
    ShardRollbackRequest,
    ShardSwapRequest,
)

__all__ = [
    "ServingHTTPServer",
    "serve_engine",
    "decode_b64_array",
    "encode_b64_array",
    "DEFAULT_PORT",
]

#: The port the CLI's ``serve`` verb binds and :class:`ServingClient`
#: dials when neither is told otherwise — one constant, so a
#: default-started server and a default-constructed client always meet.
DEFAULT_PORT = 8350


def encode_b64_array(values: np.ndarray, dtype: str) -> str:
    """Base64 of ``values`` as raw ``dtype`` (an explicit-endian spec like
    ``"<f8"``), the dense encoding's payload form."""
    return base64.b64encode(
        np.ascontiguousarray(values, dtype=dtype).tobytes()
    ).decode("ascii")


def decode_b64_array(text: Any, dtype: str, field: str) -> np.ndarray:
    """Decode a dense-encoding field back to an array, failing typed.

    The result is a zero-copy *read-only* ``np.frombuffer`` view over the
    decoded bytes.  That is deliberate: the locate hot path only ever
    reads the coordinates (``asarray`` downstream is a no-op at matching
    dtype), so a defensive ``.copy()`` here would be the single largest
    allocation on the dense path.  Callers that need a writable result
    materialise one at the end (the client's final ``np.concatenate``
    always allocates fresh) instead of copying every chunk on entry.
    """
    if not isinstance(text, str):
        raise ConfigurationError(f"{field} must be a base64 string")
    try:
        raw = base64.b64decode(text, validate=True)
    except (binascii.Error, ValueError) as exc:
        raise ConfigurationError(f"{field} is not valid base64: {exc}") from exc
    itemsize = np.dtype(dtype).itemsize
    if len(raw) % itemsize:
        raise ConfigurationError(
            f"{field} decodes to {len(raw)} bytes, not a multiple of the "
            f"{itemsize}-byte {dtype} item size"
        )
    return np.frombuffer(raw, dtype=dtype)

logger = logging.getLogger(__name__)

#: Largest request body the server will read, in bytes (64 MiB — a
#: 1e6-point locate batch is ~40 MB of JSON; anything bigger should be
#: chunked by the client's batcher).
MAX_BODY_BYTES = 64 * 1024 * 1024

#: Engine exception -> HTTP status.  The class *name* travels in the JSON
#: error body and is what the client maps back; the status code is for
#: generic HTTP middleboxes and curl users.
_STATUS_BY_EXCEPTION = (
    (ConfigurationError, 400),  # malformed request payload
    (ServingError, 404),        # unknown deployment / version / bad name
    (GridError, 422),           # strict-mode off-map coordinates
    (ReproError, 409),          # broken bundle, spec mismatch, ...
)


def _status_for(exc: BaseException) -> int:
    override = getattr(exc, "http_status", None)
    if override is not None:
        return int(override)
    for exc_type, status in _STATUS_BY_EXCEPTION:
        if isinstance(exc, exc_type):
            return status
    return 500


class _Handler(BaseHTTPRequestHandler):
    """One request: route, parse through the protocol, answer JSON.

    ``protocol_version`` is HTTP/1.1, so keep-alive connection reuse works
    (every response carries an explicit ``Content-Length``) — that is what
    makes the client's persistent connections worth having.  ``timeout``
    bounds how long an *idle* keep-alive connection may hold its worker:
    without it, N idle persistent clients would permanently starve a
    ``threads=N`` bounded pool.  A timed-out connection is simply closed;
    :class:`~repro.serving.client.ServingClient` redials transparently.
    """

    protocol_version = "HTTP/1.1"
    timeout = 30.0
    server: "ServingHTTPServer"

    # -- plumbing -------------------------------------------------------------

    def log_message(self, format: str, *args: Any) -> None:  # noqa: A002
        logger.debug("%s %s", self.address_string(), format % args)

    def _send_json(self, status: int, payload: Dict[str, Any]) -> None:
        self._send_raw_json(status, json.dumps(payload))

    def _send_raw_json(self, status: int, text: str) -> None:
        body = text.encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        if self.close_connection:
            # Set when the request body was refused unread (e.g. oversize):
            # the unconsumed bytes would corrupt the keep-alive stream, so
            # the connection must not be reused.
            self.send_header("Connection", "close")
        self.end_headers()
        self.wfile.write(body)

    def _send_error_json(self, status: int, exc: BaseException) -> None:
        self._send_json(
            status,
            {"error": {"type": type(exc).__name__, "message": str(exc)}},
        )

    def _content_length(self) -> int:
        try:
            return int(self.headers.get("Content-Length") or 0)
        except ValueError as exc:
            # The body length is unknowable, so the stream cannot be
            # resynchronised — refuse and close.
            self.close_connection = True
            raise ConfigurationError(
                f"malformed Content-Length header: {exc}"
            ) from exc

    def _read_json_body(self) -> Dict[str, Any]:
        length = self._content_length()
        if length <= 0:
            raise ConfigurationError("request body must be a JSON object")
        if length > MAX_BODY_BYTES:
            # Refusing means leaving the body unread, which would poison a
            # reused connection — close it after the error response.
            self.close_connection = True
            raise ConfigurationError(
                f"request body of {length} bytes exceeds the {MAX_BODY_BYTES}"
                " byte limit; split the batch (ServingClient does this"
                " automatically)"
            )
        try:
            raw = self.rfile.read(length)
        except OSError:
            # Timed-out or broken mid-body read: the stream position is
            # unknown, so the connection must not serve another request.
            self.close_connection = True
            raise
        if len(raw) != length:
            self.close_connection = True
            raise ConfigurationError(
                f"request body was truncated ({len(raw)} of {length} bytes)"
            )
        try:
            data = json.loads(raw)
        except json.JSONDecodeError as exc:
            raise ConfigurationError(f"request body is not valid JSON: {exc}") from exc
        if not isinstance(data, dict):
            raise ConfigurationError(
                f"request body must be a JSON object, got {type(data).__name__}"
            )
        return data

    def _drain_body(self) -> None:
        """Consume an unroutable request's body so keep-alive stays usable."""
        length = self._content_length()
        if length > MAX_BODY_BYTES:
            self.close_connection = True
        elif length > 0:
            try:
                consumed = len(self.rfile.read(length))
            except OSError:
                self.close_connection = True
                raise
            if consumed != length:
                self.close_connection = True

    # -- routes ---------------------------------------------------------------

    def do_GET(self) -> None:  # noqa: N802 - http.server API
        self._dispatch(
            {
                "/v1/healthz": self._get_healthz,
                "/v1/deployments": self._get_deployments,
                "/v1/stats": self._get_stats,
            }
        )

    def do_POST(self) -> None:  # noqa: N802 - http.server API
        self._dispatch(
            {
                "/v1/locate": self._post_locate,
                "/v1/range": self._post_range,
                "/v1/deploy": self._post_deploy,
                "/v1/rollback": self._post_rollback,
                "/v1/swap-shard": self._post_swap_shard,
                "/v1/rollback-shard": self._post_rollback_shard,
            },
            with_body=True,
        )

    def _dispatch(self, routes: Dict[str, Any], with_body: bool = False) -> None:
        handler = routes.get(self.path)
        body: Optional[Dict[str, Any]] = None
        try:
            if with_body:
                # Read the body before *any* routing or permission decision:
                # an error response sent while the body sits unread would
                # corrupt the next request on this keep-alive connection.
                if handler is not None:
                    body = self._read_json_body()
                else:
                    self._drain_body()
            else:
                # A GET carrying a body (unusual but legal) must still be
                # consumed, or its bytes would prefix the next request.
                self._drain_body()
            if handler is None:
                raise ServingError(
                    f"unknown endpoint {self.path!r}; "
                    f"known: {', '.join(sorted(routes))}"
                )
            handler(body) if with_body else handler()
        except BrokenPipeError:  # client went away mid-response
            pass
        except Exception as exc:  # repro: ignore[exception-discipline] -- dispatch boundary: every failure, expected or not, must become a JSON error response instead of a dropped connection
            status = _status_for(exc)
            if status == 500:
                logger.exception("unhandled error serving %s", self.path)
            try:
                self._send_error_json(status, exc)
            except BrokenPipeError:
                pass

    def _get_healthz(self) -> None:
        self._send_json(
            200, {"status": "ok", "deployments": len(self.server.engine)}
        )

    def _get_deployments(self) -> None:
        self._send_json(200, {"deployments": self.server.engine.deployments()})

    def _get_stats(self) -> None:
        self._send_json(200, self.server.engine.stats)

    def _post_locate(self, data: Dict[str, Any]) -> None:
        if "xs_b64" in data or "ys_b64" in data:
            self._post_locate_dense(data)
            return
        request = LocateRequest.from_dict(data)
        self._send_json(200, self.server.engine.locate(request).to_dict())

    def _post_locate_dense(self, data: Dict[str, Any]) -> None:
        """The dense-encoding locate: b64 float64 in, b64 int64 out.

        Functionally identical to the list form (same engine dispatch,
        same version/strict semantics, same error mapping) — only the
        coordinate marshalling differs.
        """
        allowed = {"kind", "deployment", "xs_b64", "ys_b64", "strict", "version"}
        unknown = sorted(set(data) - allowed)
        if unknown:
            raise ConfigurationError(
                f"unknown locate field(s) {', '.join(map(repr, unknown))}; the "
                f"dense encoding expects a subset of {tuple(sorted(allowed))} "
                "(mixing xs/ys lists with xs_b64/ys_b64 is not allowed)"
            )
        if data.get("kind", "locate") != "locate":
            raise ConfigurationError(
                f"locate got kind {data.get('kind')!r}, expected 'locate'"
            )
        deployment = data.get("deployment")
        if not isinstance(deployment, str) or not deployment:
            raise ConfigurationError("locate needs a non-empty 'deployment'")
        xs = decode_b64_array(data.get("xs_b64"), "<f8", "xs_b64")
        ys = decode_b64_array(data.get("ys_b64"), "<f8", "ys_b64")
        if len(xs) != len(ys):
            raise ConfigurationError(
                f"locate needs paired coordinates, got {len(xs)} xs and "
                f"{len(ys)} ys"
            )
        if (xs.size and not np.isfinite(xs).all()) or \
                (ys.size and not np.isfinite(ys).all()):
            raise ConfigurationError("locate coordinates must be finite")
        strict = data.get("strict")
        if strict is not None and not isinstance(strict, bool):
            raise ConfigurationError("locate 'strict' must be a bool or null")
        check_version(data.get("version"))
        version, assignment = self.server.engine.locate_batch(
            deployment, xs, ys, strict=strict, version=data.get("version")
        )
        # Assembled by hand for the same reason the client does it: base64
        # never needs escaping, so json.dumps's scan is pure overhead here.
        body = (
            '{"deployment":' + json.dumps(deployment)
            + ',"version":' + str(int(version))
            + ',"kind":"locate","regions_b64":"'
            + encode_b64_array(assignment, "<i8")
            + '","n":' + str(int(assignment.size)) + "}"
        )
        self._send_raw_json(200, body)

    def _post_range(self, data: Dict[str, Any]) -> None:
        request = RangeRequest.from_dict(data)
        self._send_json(200, self.server.engine.range_query(request).to_dict())

    # -- admin ----------------------------------------------------------------

    def _require_admin(self) -> None:
        if not self.server.admin:
            # 403, not 404: the endpoint exists, the deployment verbs are
            # just not enabled on this server instance.
            exc = ServingError(
                f"{self.path} requires the server to be started with admin "
                "endpoints enabled (serve --admin)"
            )
            exc.http_status = 403
            raise exc

    def _post_deploy(self, data: Dict[str, Any]) -> None:
        self._require_admin()
        unknown = sorted(set(data) - {"name", "artifact", "shards"})
        if unknown:
            raise ConfigurationError(
                f"unknown deploy field(s) {', '.join(map(repr, unknown))}; "
                "expected name, artifact and optionally shards"
            )
        if not isinstance(data.get("name"), str) or not data["name"]:
            raise ConfigurationError("deploy needs 'name': a deployment name")
        if not isinstance(data.get("artifact"), str) or not data["artifact"]:
            raise ConfigurationError(
                "deploy needs 'artifact': a bundle path on the server host"
            )
        shards = data.get("shards")
        if shards is not None:
            try:
                shards = (int(shards[0]), int(shards[1]))
            except (TypeError, ValueError, IndexError) as exc:
                raise ConfigurationError(
                    f"deploy 'shards' must be a [rows, cols] pair: {exc}"
                ) from exc
        info = self.server.engine.deploy(data["name"], data["artifact"], shards=shards)
        self._send_json(200, self._with_manifest_state(info))

    def _post_rollback(self, data: Dict[str, Any]) -> None:
        self._require_admin()
        unknown = sorted(set(data) - {"name", "version"})
        if unknown:
            raise ConfigurationError(
                f"unknown rollback field(s) {', '.join(map(repr, unknown))}; "
                "expected name and optionally version"
            )
        if not isinstance(data.get("name"), str) or not data["name"]:
            raise ConfigurationError("rollback needs 'name': a deployment name")
        info = self.server.engine.rollback(data["name"], data.get("version"))
        self._send_json(200, self._with_manifest_state(info))

    def _post_swap_shard(self, data: Dict[str, Any]) -> None:
        self._require_admin()
        request = ShardSwapRequest.from_dict(data)
        info = self.server.engine.swap_shard(
            request.deployment, request.row, request.col, request.artifact
        )
        self._send_json(200, self._with_manifest_state(info))

    def _post_rollback_shard(self, data: Dict[str, Any]) -> None:
        self._require_admin()
        request = ShardRollbackRequest.from_dict(data)
        info = self.server.engine.rollback_shard(
            request.deployment, request.row, request.col
        )
        self._send_json(200, self._with_manifest_state(info))

    def _with_manifest_state(self, info: Dict[str, Any]) -> Dict[str, Any]:
        """Persist the manifest after an admin mutation, degrading softly.

        The engine mutation already took effect; failing the request now
        would tell the operator a hot-swap did not happen when it did (and
        invite a retry that creates a spurious extra version).  A persist
        failure therefore rides along as ``manifest_warning`` on the
        success response instead.
        """
        try:
            self.server.persist_manifest()
        except (OSError, ReproError) as exc:
            logger.warning("manifest save failed after admin mutation: %s", exc)
            return {**info, "manifest_warning": str(exc)}
        return info


class ServingHTTPServer(ThreadingHTTPServer):
    """A threaded HTTP front over one :class:`ServingEngine`.

    Parameters
    ----------
    engine:
        The engine to serve; it is shared with the caller (the CLI keeps
        using it for logging, tests query it directly to cross-check
        responses).
    host / port:
        Bind address.  ``port=0`` picks an ephemeral port — read the bound
        one from :attr:`server_address` (tests and benchmarks do).
    admin:
        Enable the mutating endpoints (``/v1/deploy``, ``/v1/rollback``,
        ``/v1/swap-shard``, ``/v1/rollback-shard``).
    threads:
        ``None`` (default) spawns one daemon thread per connection, like
        :class:`http.server.ThreadingHTTPServer`; a positive integer
        serves from a bounded pool of that many workers instead, which is
        the knob for a box that must not run an unbounded thread count
        under heavy traffic.
    manifest_path:
        When given, every successful admin mutation re-saves the engine's
        deployment manifest there, so hot-swaps survive a restart.

    Use :meth:`serve_background` in tests (returns once the socket is
    accepting), :meth:`serve_forever` in a real process, and :meth:`close`
    (or the context manager) to shut down either.
    """

    allow_reuse_address = True
    daemon_threads = True

    def __init__(
        self,
        engine: ServingEngine,
        host: str = "127.0.0.1",
        port: int = 0,
        admin: bool = False,
        threads: Optional[int] = None,
        manifest_path: Optional[str] = None,
    ) -> None:
        if threads is not None and threads < 1:
            raise ConfigurationError(f"threads must be >= 1, got {threads}")
        self.engine = engine
        self.admin = bool(admin)
        self.manifest_path = manifest_path
        self._pool = (
            ThreadPoolExecutor(threads, thread_name_prefix="repro-serve")
            if threads is not None
            else None
        )
        self._serve_thread: Optional[threading.Thread] = None
        self._started_serving = False
        super().__init__((host, port), _Handler)

    # -- request fan-out ------------------------------------------------------

    def process_request(self, request: socket.socket, client_address: Tuple) -> None:
        """Hand the connection to a worker.

        Bounded-pool mode submits the stdlib's own per-connection routine
        (:meth:`~socketserver.ThreadingMixIn.process_request_thread`) to
        the executor; otherwise :class:`ThreadingHTTPServer` spawns its
        usual daemon thread per connection.
        """
        if self._pool is not None:
            self._pool.submit(self.process_request_thread, request, client_address)
        else:
            super().process_request(request, client_address)

    def handle_error(self, request: socket.socket, client_address: Tuple) -> None:
        logger.debug("error handling connection from %s", client_address, exc_info=True)

    # -- lifecycle ------------------------------------------------------------

    @property
    def url(self) -> str:
        host, port = self.server_address[:2]
        return f"http://{host}:{port}"

    def persist_manifest(self) -> None:
        """Re-save the deployment manifest after an admin mutation."""
        if self.manifest_path:
            self.engine.save_manifest(self.manifest_path)

    def serve_background(self) -> "ServingHTTPServer":
        """Run :meth:`serve_forever` on a daemon thread and return."""
        if self._serve_thread is not None:
            raise ServingError("server is already running in the background")
        # Mark before the thread starts: a close() racing this call must
        # see the flag and issue shutdown(), or the serve loop would keep
        # polling a closed socket.
        self._started_serving = True
        self._serve_thread = threading.Thread(
            # Tight poll interval: background servers are the test/benchmark
            # mode, and shutdown() waits out one poll cycle.
            target=lambda: self.serve_forever(poll_interval=0.02),
            name="repro-serve-accept",
            daemon=True,
        )
        self._serve_thread.start()
        return self

    def serve_forever(self, poll_interval: float = 0.5) -> None:
        self._started_serving = True
        super().serve_forever(poll_interval=poll_interval)

    def close(self) -> None:
        """Stop accepting, drain the worker pool, release the socket.

        Safe in every lifecycle state: ``shutdown()`` is only issued once
        ``serve_forever`` has run (calling it on a server that never
        served would wait forever on an event only the serve loop sets).
        """
        if self._started_serving:
            self.shutdown()
        if self._serve_thread is not None:
            self._serve_thread.join(timeout=5.0)
            self._serve_thread = None
        if self._pool is not None:
            self._pool.shutdown(wait=False)
        self.server_close()

    def __enter__(self) -> "ServingHTTPServer":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()


def serve_engine(
    engine: ServingEngine,
    host: str = "127.0.0.1",
    port: int = 0,
    admin: bool = False,
    threads: Optional[int] = None,
    manifest_path: Optional[str] = None,
) -> ServingHTTPServer:
    """Construct a :class:`ServingHTTPServer` (not yet serving).

    Thin convenience for the CLI and examples::

        server = serve_engine(engine, port=8350, admin=True)
        print("listening on", server.url)
        server.serve_forever()          # or server.serve_background()
    """
    return ServingHTTPServer(
        engine,
        host=host,
        port=port,
        admin=admin,
        threads=threads,
        manifest_path=manifest_path,
    )
