"""Multiprocess wire workers sharing read-only label grids, zero-copy.

The GIL caps the threaded servers at one core of numpy dispatch.  This
module is the way past it: ``repro serve --workers N`` forks ``N``
worker processes that all ``accept()`` on **one inherited listening
socket** (the kernel load-balances connections across blocked
acceptors — the classic pre-fork design) and answer the wire protocol of
:mod:`repro.serving.wire` from **shared memory**:

* the parent copies each deployment's dense label grid *once* into a
  ``multiprocessing.shared_memory`` segment at publish time;
* workers attach read-only views — the fork after export means the
  mapping is inherited, and a respawned worker re-attaches by name;
* a hot-swap publishes a **new** segment and a version bump over each
  worker's control pipe; workers remap by reference assignment (their
  in-flight requests finish on the old mapping), acknowledge, and the
  parent unlinks the replaced segment.  Nothing in the swap path copies
  label data into a worker — remap and bump, as the shared-readers /
  rare-writers discipline demands.

The division of labour with the HTTP plane: workers serve the read path
(dense locate, range, introspection) from immutable snapshots; **all
mutations stay HTTP-admin**, where the engine lives, and flow back here
through :meth:`WorkerPool.publish` (the HTTP server's mutation hook).
Workers therefore never lock against writers at all — the swap/unlink
discipline above is the whole synchronisation story.

Crash containment: a worker that dies (segfault, OOM-kill, ``kill -9``)
takes only its in-flight connections with it; the parent's monitor
thread notices the dead child over its process sentinel and forks a
replacement attached to the current segments.  Clients see a reset
connection, and :class:`~repro.serving.client.ServingClient` redials —
the kernel hands the new connection to a live worker.

Platform note: the pool requires the ``fork`` start method (Linux).  On
platforms without it, constructing a :class:`WorkerPool` raises a typed
:class:`~repro.exceptions.ConfigurationError`; the in-process
:class:`~repro.serving.wire.WireServer` serves the same protocol there.
"""

from __future__ import annotations

import logging
import multiprocessing
import multiprocessing.connection
import os
import socket
import threading
from multiprocessing import shared_memory
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from ..exceptions import ConfigurationError, ReproError, ServingError
from ..spatial.geometry import BoundingBox
from ..spatial.grid import Grid
from ..spatial.region import GridRegion
from .locks import new_lock
from .protocol import LATEST, LocateRequest, QueryResult, RangeRequest
from .wire import serve_connection

__all__ = ["WorkerPool", "WorkerState", "fork_available"]

logger = logging.getLogger(__name__)

#: How long :meth:`WorkerPool.publish` waits for each worker to
#: acknowledge a swap before deferring the old segment's unlink.
ACK_TIMEOUT = 5.0

#: Backend name workers report: the shared dense label grid.
WORKER_BACKEND = "shared-dense"


def fork_available() -> bool:
    """Whether this platform can fork workers (Linux/macOS, not Windows)."""
    return "fork" in multiprocessing.get_all_start_methods()


# -- worker-side state --------------------------------------------------------


class _WorkerDeployment:
    """One deployment's immutable worker snapshot: geometry + shared labels.

    Everything a worker needs to answer the read path bit-exactly
    against the in-process engine: the :class:`Grid` (reconstructed from
    geometry — pure arithmetic, no arrays), the shared label grid (a
    read-only view over the segment), and the region extent boxes for
    range queries.  The ``shm`` handle is kept referenced so the mapping
    outlives every in-flight request that reads through it.
    """

    __slots__ = (
        "name", "version", "grid", "labels", "region_bounds", "n_regions",
        "shm", "source",
    )

    def __init__(self, export: Dict[str, Any]) -> None:
        self.name = export["name"]
        self.version = int(export["version"])
        bounds = export["bounds"]
        self.grid = Grid(
            int(export["rows"]),
            int(export["cols"]),
            BoundingBox(
                float(bounds[0]), float(bounds[1]),
                float(bounds[2]), float(bounds[3]),
            ),
        )
        self.shm = shared_memory.SharedMemory(name=export["segment"])
        labels = np.ndarray(
            (self.grid.rows, self.grid.cols), dtype=np.int64, buffer=self.shm.buf
        )
        labels.flags.writeable = False  # readers, by contract
        self.labels = labels
        extents = np.asarray(export["extents"], dtype=np.int64)
        self.region_bounds = [
            GridRegion(
                self.grid, int(r0), int(r1), int(c0), int(c1)
            ).bounds
            for r0, r1, c0, c1 in extents
        ]
        self.n_regions = len(self.region_bounds)
        self.source = export.get("source")


class WorkerState:
    """A worker process's read-only engine: shared snapshots, no writers.

    Implements the engine surface :func:`~repro.serving.wire.serve_connection`
    dispatches to (``locate_batch`` / ``locate`` / ``range_query`` /
    ``stats`` / ``deployments`` / ``__len__``) over
    :class:`_WorkerDeployment` snapshots.  Swaps replace a snapshot by
    single reference assignment — in-flight requests keep the object they
    already read, so they finish on a whole version, never a mix.  The
    replaced snapshot is retired to ``previous`` (so a client that pinned
    the prior version mid-batch survives one overlapping swap) and
    dropped on the next; queries for any other version answer a typed
    error naming the HTTP transport, which holds full history.
    """

    def __init__(self, strict_default: bool = False) -> None:
        self._strict_default = bool(strict_default)
        # name -> (current, previous-or-None); replaced atomically as a pair.
        self._deployments: Dict[
            str, Tuple[_WorkerDeployment, Optional[_WorkerDeployment]]
        ] = {}
        self._counter_lock = new_lock("workers.state.counters")
        self._queries = 0  # guarded-by: self._counter_lock
        self._points = 0  # guarded-by: self._counter_lock
        self._located = 0  # guarded-by: self._counter_lock

    # -- publication ----------------------------------------------------------

    def apply_exports(
        self,
        exports: Sequence[Dict[str, Any]],
        removed: Sequence[str] = (),
    ) -> None:
        """Attach ``exports`` (new/changed deployments) and drop ``removed``.

        Called from the control-pipe thread; each deployment's
        ``(current, previous)`` pair moves by one dict assignment, which
        is atomic under the GIL — request threads see the old pair or the
        new one, never a torn mix.
        """
        for export in exports:
            entry = _WorkerDeployment(export)
            held = self._deployments.get(entry.name)
            previous = held[0] if held is not None else None
            if previous is not None and previous.version == entry.version:
                # Same version republished (e.g. a shard swap): the labels
                # changed but the version did not, so the old snapshot
                # must not stay reachable as "previous" — a pin would
                # resolve to stale labels.
                previous = held[1] if held is not None else None
            self._deployments[entry.name] = (entry, previous)
        for name in removed:
            self._deployments.pop(name, None)

    # -- engine surface --------------------------------------------------------

    def __len__(self) -> int:
        return len(self._deployments)

    def _resolve(
        self, name: str, version: Optional[Union[int, str]]
    ) -> _WorkerDeployment:
        held = self._deployments.get(name)
        if held is None:
            raise ServingError(
                f"unknown deployment {name!r}; "
                f"known: {sorted(self._deployments)}"
            )
        current, previous = held
        if version is None:
            return current
        if version == LATEST:
            # Workers only hold the active snapshot; after a rollback the
            # engine's "latest" can differ, and answering with the active
            # one would be silently wrong.
            raise ServingError(
                "the 'latest' version alias is not resolvable on a worker "
                "(workers hold only the active snapshot); query the HTTP "
                "transport, which holds full version history"
            )
        if version == current.version:
            return current
        if previous is not None and version == previous.version:
            return previous
        raise ServingError(
            f"version {version} of deployment {name!r} is not resident in "
            f"this worker (resident: {current.version}"
            + (f", {previous.version}" if previous is not None else "")
            + "); query the HTTP transport, which holds full version history"
        )

    def locate_batch(
        self,
        name: str,
        xs: np.ndarray,
        ys: np.ndarray,
        strict: Optional[bool] = None,
        version: Optional[Union[int, str]] = None,
    ) -> Tuple[int, np.ndarray]:
        """Array-native batch locate against the shared label grid.

        Semantically identical to
        :meth:`~repro.serving.server.PartitionServer.locate_points` with
        the dense backend (the oracle the worker tests pin against):
        same clamp/strict behaviour through ``Grid.locate_many``, same
        ``-1`` off-map sentinel, same int64 result.
        """
        # returns: int64[n]
        entry = self._resolve(name, version)
        xs = np.asarray(xs, dtype=float)
        ys = np.asarray(ys, dtype=float)
        if self._strict_default if strict is None else strict:
            rows, cols = entry.grid.locate_many(xs, ys)
            assignment = entry.labels[rows, cols]
        else:
            rows, cols = entry.grid.locate_many(xs, ys, strict=False)
            inside = rows >= 0
            if bool(np.all(inside)):
                assignment = entry.labels[rows, cols]
            else:
                assignment = np.full(xs.shape, -1, dtype=int)
                assignment[inside] = entry.labels[rows[inside], cols[inside]]
        with self._counter_lock:
            self._queries += 1
            self._points += int(assignment.size)
            self._located += int(np.count_nonzero(assignment >= 0))
        return entry.version, assignment

    def locate(self, request: LocateRequest) -> QueryResult:
        """Typed locate (the wire control plane's list form)."""
        version, assignment = self.locate_batch(
            request.deployment,
            np.asarray(request.xs, dtype=float),
            np.asarray(request.ys, dtype=float),
            strict=request.strict,
            version=request.version,
        )
        return QueryResult(
            deployment=request.deployment,
            version=version,
            kind="locate",
            regions=tuple(assignment.tolist()),  # repro: ignore[hot-path-copy] -- QueryResult is the typed protocol boundary; regions leave numpy here by design
        )

    def range_query(self, request: RangeRequest) -> QueryResult:
        """Regions intersecting the request box, off the shared labels.

        The same windowed algorithm as
        :meth:`~repro.serving.server.PartitionServer.range_query`: slice
        the label grid down to the query's cell window (widened one cell
        against boundary rounding), then exact ``intersects`` tests on
        the candidates.
        """
        entry = self._resolve(request.deployment, request.version)
        grid = entry.grid
        bounds = grid.bounds
        query = request.bounds
        regions: List[int] = []
        if bounds.intersects(query):
            row_lo = int(np.floor((query.min_y - bounds.min_y) / grid.cell_height)) - 1
            row_hi = int(np.floor((query.max_y - bounds.min_y) / grid.cell_height)) + 2
            col_lo = int(np.floor((query.min_x - bounds.min_x) / grid.cell_width)) - 1
            col_hi = int(np.floor((query.max_x - bounds.min_x) / grid.cell_width)) + 2
            row_lo, col_lo = max(row_lo, 0), max(col_lo, 0)
            row_hi, col_hi = min(row_hi, grid.rows), min(col_hi, grid.cols)
            if row_lo < row_hi and col_lo < col_hi:
                candidates = np.unique(
                    entry.labels[row_lo:row_hi, col_lo:col_hi]
                )
                regions = [
                    int(index)
                    for index in candidates
                    if index >= 0 and entry.region_bounds[index].intersects(query)
                ]
        with self._counter_lock:
            self._queries += 1
        return QueryResult(
            deployment=request.deployment,
            version=entry.version,
            kind="range",
            regions=tuple(regions),
        )

    def deployments(self) -> List[Dict[str, Any]]:
        """One summary row per resident deployment (worker perspective)."""
        rows = []
        for name in sorted(self._deployments):
            current, _ = self._deployments[name]
            rows.append(
                {
                    "name": name,
                    "version": current.version,
                    "active": True,
                    "latest": None,  # unknown to a worker; HTTP knows
                    "source": current.source,
                    "shards": None,
                    "n_regions": current.n_regions,
                    "backend": WORKER_BACKEND,
                }
            )
        return rows

    @property
    def stats(self) -> Dict[str, Any]:
        """This worker's counters (per-process, not pool-aggregated)."""
        with self._counter_lock:
            queries, points, located = self._queries, self._points, self._located
        return {
            "queries": queries,
            "points": points,
            "located": located,
            "worker_pid": os.getpid(),
            "deployments": {
                name: {"version": held[0].version}
                for name, held in sorted(self._deployments.items())
            },
        }


# -- the worker process entry -------------------------------------------------


def _control_loop(
    control: "multiprocessing.connection.Connection", state: WorkerState
) -> None:
    """Apply parent messages (swap/shutdown) until the pipe dies."""
    while True:
        try:
            message = control.recv()
        except (EOFError, OSError):
            # Parent is gone; a worker without a parent must not linger.
            os._exit(0)
        op = message.get("op")
        if op == "swap":
            try:
                state.apply_exports(
                    message.get("exports", ()), message.get("removed", ())
                )
                control.send({"op": "swap", "ok": True})
            except Exception as exc:  # repro: ignore[exception-discipline] -- the ack must carry any attach failure back to the parent, whatever its type
                logger.exception("worker failed to apply a swap")
                control.send({"op": "swap", "ok": False, "error": str(exc)})
        elif op == "shutdown":
            os._exit(0)
        else:
            control.send({"op": op, "ok": False, "error": f"unknown op {op!r}"})


def _worker_main(
    listener: socket.socket,
    control: "multiprocessing.connection.Connection",
    parent_end: "multiprocessing.connection.Connection",
    exports: List[Dict[str, Any]],
    strict_default: bool,
    codecs: Tuple[str, ...],
    worker_index: int,
) -> None:
    """A forked worker: attach shared state, then accept-and-serve forever."""
    try:
        parent_end.close()  # our inherited copy of the parent's pipe end
    except OSError:  # pragma: no cover - close is best-effort
        pass
    state = WorkerState(strict_default)
    state.apply_exports(exports)
    threading.Thread(
        target=_control_loop, args=(control, state),
        name="repro-worker-control", daemon=True,
    ).start()
    info = {"mode": "worker", "worker": worker_index, "pid": os.getpid()}
    while True:
        try:
            conn, _ = listener.accept()
        except OSError:
            os._exit(0)  # listener closed under us: the pool is shutting down
        threading.Thread(
            target=_serve_one, args=(conn, state, codecs, info),
            name="repro-worker-conn", daemon=True,
        ).start()


def _serve_one(
    conn: socket.socket,
    state: WorkerState,
    codecs: Tuple[str, ...],
    info: Dict[str, Any],
) -> None:
    try:
        serve_connection(conn, state, codecs, info)
    finally:
        try:
            conn.close()
        except OSError:  # pragma: no cover - close is best-effort
            pass


# -- parent side --------------------------------------------------------------


class _Export:
    """Parent-side record of one published deployment segment."""

    __slots__ = ("descriptor", "segment", "stamp")

    def __init__(self, descriptor: Dict[str, Any],
                 segment: shared_memory.SharedMemory, stamp: Tuple) -> None:
        self.descriptor = descriptor
        self.segment = segment
        self.stamp = stamp


def _publish_stamp(version: int, server: Any) -> Tuple:
    """Change-detection stamp: version plus per-tile versions when sharded.

    A plain deploy/rollback moves ``version``; a shard swap/rollback can
    leave the deployment version alone while changing a tile's labels,
    which ``shard_versions`` exposes.  Equal stamps mean the published
    labels are current and the segment is reused untouched.
    """
    shard_versions = getattr(server, "shard_versions", None)
    if callable(shard_versions):
        return (version, tuple(tuple(row) for row in shard_versions()))
    return (version, None)


def _export_labels(server: Any) -> np.ndarray:
    """The effective dense label grid of any server type, publish-time."""
    compose = getattr(server, "compose_labels", None)
    if callable(compose):  # sharded: apply tile swaps
        return compose()
    return np.ascontiguousarray(server.partition.label_grid, dtype=np.int64)


class WorkerPool:
    """Parent acceptor + ``N`` forked wire workers over shared segments.

    Construction binds the listening socket and snapshots nothing;
    :meth:`start` exports the engine's active deployments into shared
    memory and forks the workers.  :meth:`publish` is the mutation hook
    the HTTP admin plane calls after every successful deploy / rollback /
    shard swap: it re-exports what changed, swaps workers over their
    control pipes, and unlinks replaced segments once every worker
    acknowledged (deferring the unlink when one does not answer in
    :data:`ACK_TIMEOUT`, so a slow worker can never be left reading an
    unlinked-and-reused name).

    The pool serves connections only in its children — the parent never
    accepts.  A monitor thread respawns workers that die; :meth:`close`
    shuts the pool down (shutdown message, then terminate stragglers)
    and unlinks every segment.
    """

    def __init__(
        self,
        engine: Any,
        host: str = "127.0.0.1",
        port: int = 0,
        workers: int = 2,
        codecs: Sequence[str] = ("binary", "json+b64"),
    ) -> None:
        if workers < 1:
            raise ConfigurationError(f"workers must be >= 1, got {workers}")
        if not fork_available():
            raise ConfigurationError(
                "multiprocess workers need the 'fork' start method, which "
                "this platform lacks; use the in-process wire server "
                "(--workers 0) instead"
            )
        self.engine = engine
        self.workers = int(workers)
        self.codecs = tuple(codecs)
        self._ctx = multiprocessing.get_context("fork")
        self._listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self._listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        self._listener.bind((host, port))
        self._listener.listen(128)
        self._lock = new_lock("workers.pool")
        self._exports: Dict[str, _Export] = {}  # guarded-by: self._lock
        self._retired: List[shared_memory.SharedMemory] = []  # guarded-by: self._lock
        self._children: List[Tuple[Any, Any]] = []  # guarded-by: self._lock
        self._closing = threading.Event()
        self._monitor: Optional[threading.Thread] = None
        self._started = False

    @property
    def host(self) -> str:
        return self._listener.getsockname()[0]

    @property
    def port(self) -> int:
        return self._listener.getsockname()[1]

    # -- lifecycle ------------------------------------------------------------

    def start(self) -> "WorkerPool":
        """Export the engine's active deployments and fork the workers."""
        if self._started:
            raise ServingError("worker pool is already started")
        self._started = True
        with self._lock:
            self._refresh_exports_locked()
            for index in range(self.workers):
                self._children.append(self._spawn_locked(index))
        self._monitor = threading.Thread(
            target=self._monitor_loop, name="repro-worker-monitor", daemon=True
        )
        self._monitor.start()
        return self

    def _spawn_locked(self, index: int) -> Tuple[Any, Any]:
        """Fork one worker over the current exports (caller holds the lock)."""
        parent_conn, child_conn = self._ctx.Pipe(duplex=True)
        exports = [export.descriptor for export in self._exports.values()]  # repro: ignore[lock-guarded-attrs] -- caller holds self._lock (the _locked suffix is that contract)
        process = self._ctx.Process(
            target=_worker_main,
            args=(
                self._listener,
                child_conn,
                parent_conn,
                exports,
                bool(self.engine.config.strict),
                self.codecs,
                index,
            ),
            name=f"repro-wire-worker-{index}",
            daemon=True,
        )
        process.start()
        child_conn.close()  # the child's end lives in the child now
        return process, parent_conn

    def _monitor_loop(self) -> None:
        """Respawn workers that die until the pool is closing."""
        while not self._closing.is_set():
            with self._lock:
                sentinels = {
                    process.sentinel: index
                    for index, (process, _) in enumerate(self._children)
                    if process.is_alive()
                }
            if not sentinels:
                if self._closing.wait(timeout=0.2):
                    return
                continue
            ready = multiprocessing.connection.wait(
                list(sentinels), timeout=0.2
            )
            if self._closing.is_set():
                return
            for sentinel in ready:
                index = sentinels[sentinel]
                with self._lock:
                    process, conn = self._children[index]
                    if process.is_alive():
                        continue  # raced a respawn
                    logger.warning(
                        "wire worker %d (pid %s) died with exit code %s; "
                        "respawning",
                        index, process.pid, process.exitcode,
                    )
                    try:
                        conn.close()
                    except OSError:  # pragma: no cover - close is best-effort
                        pass
                    self._children[index] = self._spawn_locked(index)

    def publish(self) -> None:
        """Push the engine's current deployments to every worker.

        The HTTP server's mutation hook.  Creates fresh segments for
        deployments whose publish stamp moved, swaps all workers, waits
        for acknowledgements, and unlinks the replaced segments (or
        defers them to :meth:`close` when a worker failed to answer).
        """
        if not self._started:
            raise ServingError("worker pool is not started")
        with self._lock:
            replaced = self._refresh_exports_locked()
            if not replaced["exports"] and not replaced["removed"]:
                return
            message = {
                "op": "swap",
                "exports": replaced["exports"],
                "removed": replaced["removed"],
            }
            acked = True
            for process, conn in self._children:
                if not process.is_alive():
                    continue  # the monitor will respawn it on current exports
                try:
                    conn.send(message)
                    if conn.poll(ACK_TIMEOUT):
                        answer = conn.recv()  # repro: ignore[blocking-under-lock] -- bounded by the poll() above; the lock must span the whole swap so a respawn cannot fork mid-broadcast with half-applied exports
                        if not answer.get("ok"):
                            logger.warning(
                                "worker pid %s rejected a swap: %s",
                                process.pid, answer.get("error"),
                            )
                            acked = False
                    else:
                        logger.warning(
                            "worker pid %s did not acknowledge a swap within "
                            "%.1fs; deferring segment unlink",
                            process.pid, ACK_TIMEOUT,
                        )
                        acked = False
                except (OSError, EOFError, BrokenPipeError):
                    acked = False  # dying worker; monitor handles it
            old_segments = replaced["old_segments"]
            if acked:
                for segment in old_segments:
                    self._unlink(segment)
            else:
                self._retired.extend(old_segments)

    def _refresh_exports_locked(self) -> Dict[str, Any]:
        """Re-export changed deployments; the swap message pieces.

        Caller holds the pool lock.  Returns the changed descriptors,
        removed names, and the segments they replaced (not yet unlinked).
        """
        current: Dict[str, Tuple[int, Any, Any]] = {}
        for row in self.engine.deployments():
            name = row["name"]
            try:
                version, server = self.engine.active_snapshot(name)
            except ReproError as exc:
                # A broken bundle must not wedge publication for the healthy
                # deployments; it stays on whatever the workers already hold.
                logger.warning(
                    "skipping deployment %r in worker publish: %s", name, exc
                )
                if name in self._exports:  # repro: ignore[lock-guarded-attrs] -- caller holds self._lock (the _locked suffix is that contract)
                    current[name] = (None, None, None)
                continue
            current[name] = (version, server, row.get("source"))
        changed: List[Dict[str, Any]] = []
        old_segments: List[shared_memory.SharedMemory] = []
        for name, (version, server, source) in current.items():
            if server is None:
                continue  # broken bundle kept resident on its old segment
            stamp = _publish_stamp(version, server)
            export = self._exports.get(name)  # repro: ignore[lock-guarded-attrs] -- caller holds self._lock (the _locked suffix is that contract)
            if export is not None and export.stamp == stamp:
                continue
            labels = _export_labels(server)
            segment = shared_memory.SharedMemory(
                create=True, size=int(labels.nbytes)
            )
            view = np.ndarray(labels.shape, dtype=np.int64, buffer=segment.buf)
            view[:] = labels  # the one copy, parent-side, publish-time
            partition = server.partition
            grid = partition.grid
            extents = np.array(
                [
                    (
                        region.row_start, region.row_stop,
                        region.col_start, region.col_stop,
                    )
                    for region in partition.regions
                ],
                dtype=np.int64,
            )
            descriptor = {
                "name": name,
                "version": version,
                "segment": segment.name,
                "rows": grid.rows,
                "cols": grid.cols,
                "bounds": [
                    grid.bounds.min_x, grid.bounds.min_y,
                    grid.bounds.max_x, grid.bounds.max_y,
                ],
                "extents": extents,
                "source": source,
            }
            if export is not None:
                old_segments.append(export.segment)
            self._exports[name] = _Export(descriptor, segment, stamp)  # repro: ignore[lock-guarded-attrs] -- caller holds self._lock (the _locked suffix is that contract)
            changed.append(descriptor)
        removed = [name for name in self._exports if name not in current]  # repro: ignore[lock-guarded-attrs] -- caller holds self._lock (the _locked suffix is that contract)
        for name in removed:
            old_segments.append(self._exports.pop(name).segment)  # repro: ignore[lock-guarded-attrs] -- caller holds self._lock (the _locked suffix is that contract)
        return {
            "exports": changed,
            "removed": removed,
            "old_segments": old_segments,
        }

    @staticmethod
    def _unlink(segment: shared_memory.SharedMemory) -> None:
        try:
            segment.close()
            segment.unlink()
        except (OSError, FileNotFoundError):  # pragma: no cover - best-effort
            pass

    def close(self) -> None:
        """Shut workers down and unlink every shared segment."""
        self._closing.set()
        if self._monitor is not None:
            self._monitor.join(timeout=5.0)
            self._monitor = None
        with self._lock:
            children, self._children = self._children, []
        for process, conn in children:
            try:
                conn.send({"op": "shutdown"})
            except (OSError, BrokenPipeError):
                pass
        for process, conn in children:
            process.join(timeout=2.0)
            if process.is_alive():
                process.terminate()
                process.join(timeout=2.0)
            try:
                conn.close()
            except OSError:  # pragma: no cover - close is best-effort
                pass
        try:
            self._listener.close()
        except OSError:  # pragma: no cover - close is best-effort
            pass
        with self._lock:
            exports = list(self._exports.values())
            self._exports.clear()
            retired, self._retired = self._retired, []
        for export in exports:
            self._unlink(export.segment)
        for segment in retired:
            self._unlink(segment)

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"WorkerPool({self.host}:{self.port}, workers={self.workers}, "
            f"exports={sorted(self._exports)})"  # repro: ignore[lock-guarded-attrs] -- debugging repr; a racy key listing is acceptable
        )
