"""Typed HTTP client for the serving service.

:class:`ServingClient` is the network twin of calling a
:class:`~repro.serving.engine.ServingEngine` directly: the same protocol
objects in (:class:`~repro.serving.protocol.LocateRequest` /
:class:`~repro.serving.protocol.RangeRequest`), the same
:class:`~repro.serving.protocol.QueryResult` out, and the same exception
classes on failure — the server sends the engine's exception type name in
its JSON error body and the client re-raises it from
:mod:`repro.exceptions`, so ``except ServingError`` works identically
in-process and over the wire.  What the transport adds is handled here so
callers never see it:

* **connection reuse** — one persistent HTTP/1.1 connection per thread
  (``threading.local``), so a client shared across worker threads is safe
  and each thread pays the TCP handshake once;
* **retries** — idempotent requests (queries and reads) are retried with
  exponential backoff on connection-level failures; admin mutations are
  never retried (a replayed ``deploy`` would create a second version);
* **batching** — :meth:`locate_points` splits arbitrarily large
  coordinate batches into bounded requests and pins every chunk after the
  first to the version that answered the first, so a hot-swap in the
  middle of a split batch cannot produce a half-old/half-new assignment;
* **typed transport errors** — anything below the protocol (refused
  connection, dropped socket, non-JSON response) raises
  :class:`~repro.exceptions.TransportError`.
"""

from __future__ import annotations

import http.client
import json
import socket
import threading
import time
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from .. import exceptions
from ..exceptions import ReproError, ServingError, TransportError
from .http import DEFAULT_PORT, decode_b64_array, encode_b64_array
from .protocol import LocateRequest, QueryResult, RangeRequest

__all__ = ["ServingClient"]

#: Default maximum points per locate request; batches above it are split.
#: 50k points is ~2 MB of JSON per direction — large enough to amortise
#: the HTTP round-trip, small enough to keep per-request latency bounded.
DEFAULT_BATCH_SIZE = 50_000


def _exception_for(error: Dict[str, Any]) -> ReproError:
    """The typed exception a server-side JSON error body maps back to.

    The server sends the engine exception's class name; anything that is
    not a known :class:`ReproError` subclass (old server, foreign proxy)
    degrades to :class:`ServingError` rather than being swallowed.
    """
    name = error.get("type", "")
    message = error.get("message", "serving request failed")
    exc_type = getattr(exceptions, str(name), None)
    if isinstance(exc_type, type) and issubclass(exc_type, ReproError):
        return exc_type(message)
    return ServingError(f"{name}: {message}" if name else message)


class ServingClient:
    """Call a :class:`~repro.serving.http.ServingHTTPServer` like an engine.

    Parameters
    ----------
    host / port:
        The serving service's bind address.
    timeout:
        Socket timeout per request, seconds.
    retries:
        How many times a *read* request is retried after a
        connection-level failure (total attempts = ``retries + 1``).
        Engine-side errors (unknown deployment, bad payload) are never
        retried — they are deterministic.
    backoff:
        Base delay between retries, seconds; doubles per attempt.
    batch_size:
        Largest point count per locate request;
        :meth:`locate_points` splits bigger batches transparently.

    The client is usable as a context manager; :meth:`close` drops every
    thread's persistent connection.
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = DEFAULT_PORT,
        timeout: float = 30.0,
        retries: int = 2,
        backoff: float = 0.1,
        batch_size: int = DEFAULT_BATCH_SIZE,
    ) -> None:
        if retries < 0:
            raise TransportError(f"retries must be >= 0, got {retries}")
        if batch_size < 1:
            raise TransportError(f"batch_size must be >= 1, got {batch_size}")
        self.host = host
        self.port = int(port)
        self.timeout = float(timeout)
        self.retries = int(retries)
        self.backoff = float(backoff)
        self.batch_size = int(batch_size)
        self._local = threading.local()
        self._connections: List[http.client.HTTPConnection] = []
        self._connections_lock = threading.Lock()

    # -- transport ------------------------------------------------------------

    def _connection(self) -> http.client.HTTPConnection:
        connection = getattr(self._local, "connection", None)
        if connection is None:
            connection = http.client.HTTPConnection(
                self.host, self.port, timeout=self.timeout
            )
            self._local.connection = connection
            with self._connections_lock:
                self._connections.append(connection)
        return connection

    def _drop_connection(self) -> None:
        connection = getattr(self._local, "connection", None)
        if connection is not None:
            connection.close()
            self._local.connection = None
            with self._connections_lock:
                if connection in self._connections:
                    self._connections.remove(connection)

    def _request(
        self,
        method: str,
        path: str,
        payload: Optional[Dict[str, Any]] = None,
        retry: bool = True,
        raw_body: Optional[str] = None,
    ) -> Dict[str, Any]:
        """One HTTP exchange -> parsed JSON, with retries below the protocol.

        Only connection-level failures are retried (and only when
        ``retry`` — admin mutations pass ``False``): an HTTP response, even
        a 5xx, means the server made a decision, and replaying it is the
        caller's call.  ``raw_body`` sends pre-encoded JSON text verbatim
        (the dense locate path assembles its own, skipping ``json.dumps``'s
        escaping scan over megabytes of base64).
        """
        body = raw_body if raw_body is not None else (
            None if payload is None else json.dumps(payload)
        )
        attempts = (self.retries if retry else 0) + 1
        last_error: Optional[Exception] = None
        for attempt in range(attempts):
            if attempt:
                time.sleep(self.backoff * (2 ** (attempt - 1)))
            try:
                connection = self._connection()
                connection.request(
                    method,
                    path,
                    body=body,
                    headers={"Content-Type": "application/json"},
                )
                response = connection.getresponse()
                raw = response.read()  # must drain before connection reuse
            except (OSError, http.client.HTTPException) as exc:
                # Covers refused/reset connections, timeouts and protocol
                # breakage; the stale keep-alive connection is dropped so
                # the retry dials fresh.
                self._drop_connection()
                last_error = exc
                continue
            return self._parse(response.status, raw, path)
        raise TransportError(
            f"{method} {self.url}{path} failed after {attempts} attempt(s): "
            f"{last_error}"
        ) from last_error

    def _parse(self, status: int, raw: bytes, path: str) -> Dict[str, Any]:
        try:
            data = json.loads(raw)
        except json.JSONDecodeError as exc:
            raise TransportError(
                f"non-JSON response (HTTP {status}) from {self.url}{path}: "
                f"{raw[:200]!r}"
            ) from exc
        if isinstance(data, dict) and "error" in data:
            raise _exception_for(data["error"])
        if status != 200:
            raise TransportError(
                f"HTTP {status} from {self.url}{path} without an error body"
            )
        if not isinstance(data, dict):
            raise TransportError(
                f"expected a JSON object from {self.url}{path}, "
                f"got {type(data).__name__}"
            )
        return data

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def close(self) -> None:
        """Close every thread's persistent connection."""
        with self._connections_lock:
            connections, self._connections = self._connections, []
        for connection in connections:
            connection.close()
        self._local = threading.local()

    def __enter__(self) -> "ServingClient":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ServingClient({self.url})"

    # -- reads ----------------------------------------------------------------

    def healthz(self) -> Dict[str, Any]:
        """Liveness probe: ``{"status": "ok", "deployments": N}``."""
        return self._request("GET", "/v1/healthz")

    def stats(self) -> Dict[str, Any]:
        """The engine's counters plus its artifact cache's."""
        return self._request("GET", "/v1/stats")

    def deployments(self) -> List[Dict[str, Any]]:
        """The service's deployment table (one row per name)."""
        return self._request("GET", "/v1/deployments")["deployments"]

    # -- queries --------------------------------------------------------------

    def locate(self, request: LocateRequest) -> QueryResult:
        """Answer one typed :class:`LocateRequest` over the wire."""
        return QueryResult.from_dict(
            self._request("POST", "/v1/locate", request.to_dict())
        )

    def range_query(self, request: RangeRequest) -> QueryResult:
        """Answer one typed :class:`RangeRequest` over the wire."""
        return QueryResult.from_dict(
            self._request("POST", "/v1/range", request.to_dict())
        )

    def locate_points(
        self,
        deployment: str,
        xs: Union[np.ndarray, Sequence[float]],
        ys: Union[np.ndarray, Sequence[float]],
        strict: Optional[bool] = None,
        version: Optional[Union[int, str]] = None,
    ) -> np.ndarray:
        """Batch point location, split into bounded requests.

        The network twin of
        :meth:`~repro.serving.engine.ServingEngine.locate_points`: returns
        the assignment array (``-1`` off-map in non-strict mode).  Batches
        above ``batch_size`` points are sent as multiple requests; after
        the first chunk answers, the remaining chunks are pinned to the
        version that answered it, so a hot-swap mid-batch cannot split the
        result across two partitions.

        Coordinates cross the wire in the server's dense encoding (base64
        float64 inside the JSON envelope) — bit-exact and ~50x cheaper to
        marshal than JSON number lists at benchmark batch sizes.  Use
        :meth:`locate` for the list form.
        """
        # returns: int64[n]
        xs = np.asarray(xs, dtype=float)
        ys = np.asarray(ys, dtype=float)
        if xs.shape != ys.shape or xs.ndim != 1:
            raise TransportError(
                f"locate_points needs two equal-length 1-D coordinate arrays, "
                f"got shapes {xs.shape} and {ys.shape}"
            )
        pieces: List[np.ndarray] = []
        pinned = version
        for start in range(0, len(xs), self.batch_size) or (0,):
            # Assembled by hand rather than json.dumps: the base64 alphabet
            # never needs escaping, and the escaping scan over megabytes of
            # it is measurable at benchmark batch sizes.
            body = (
                '{"deployment":' + json.dumps(deployment)
                + ',"xs_b64":"'
                + encode_b64_array(xs[start:start + self.batch_size], "<f8")
                + '","ys_b64":"'
                + encode_b64_array(ys[start:start + self.batch_size], "<f8")
                + '"'
                + ("" if strict is None else ',"strict":' + json.dumps(strict))
                + ("" if pinned is None else ',"version":' + json.dumps(pinned))
                + "}"
            )
            answer = self._request("POST", "/v1/locate", raw_body=body)
            if pinned is None or pinned == "latest":
                pinned = answer.get("version")
            try:
                piece = decode_b64_array(
                    answer.get("regions_b64"), "<i8", "regions_b64"
                )
            except ReproError as exc:
                raise TransportError(
                    f"malformed dense locate response: {exc}"
                ) from exc
            # The decoded piece is already little-endian int64; the final
            # concatenate below produces a fresh writable native array, so
            # copying each read-only frombuffer view here was pure overhead.
            pieces.append(piece)
        return np.concatenate(pieces) if pieces else np.empty(0, dtype=int)

    # -- admin ----------------------------------------------------------------

    def deploy(
        self,
        name: str,
        artifact: str,
        shards: Optional[Tuple[int, int]] = None,
    ) -> Dict[str, Any]:
        """Hot-swap ``name`` to the bundle at ``artifact`` (a server-host path).

        Requires the service to run with admin endpoints enabled.  Never
        retried: a replayed deploy would create a second version.
        """
        payload: Dict[str, Any] = {"name": name, "artifact": artifact}
        if shards is not None:
            payload["shards"] = [int(shards[0]), int(shards[1])]
        return self._request("POST", "/v1/deploy", payload, retry=False)

    def rollback(
        self, name: str, version: Optional[Union[int, str]] = None
    ) -> Dict[str, Any]:
        """Repoint ``name`` at an older (or explicit) version. Admin only."""
        payload: Dict[str, Any] = {"name": name}
        if version is not None:
            payload["version"] = version
        return self._request("POST", "/v1/rollback", payload, retry=False)

    def swap_shard(
        self, name: str, row: int, col: int, artifact: str
    ) -> Dict[str, Any]:
        """Hot-swap one tile of ``name``'s active sharded version from the
        donor bundle at ``artifact`` (a server-host path). Admin only; never
        retried — a replayed swap would append a second tile version."""
        payload = {
            "deployment": name,
            "row": int(row),
            "col": int(col),
            "artifact": artifact,
        }
        return self._request("POST", "/v1/swap-shard", payload, retry=False)

    def rollback_shard(self, name: str, row: int, col: int) -> Dict[str, Any]:
        """Step one tile of ``name``'s active sharded version back. Admin
        only; never retried, like :meth:`swap_shard`."""
        payload = {"deployment": name, "row": int(row), "col": int(col)}
        return self._request("POST", "/v1/rollback-shard", payload, retry=False)
