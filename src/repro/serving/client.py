"""Typed HTTP client for the serving service.

:class:`ServingClient` is the network twin of calling a
:class:`~repro.serving.engine.ServingEngine` directly: the same protocol
objects in (:class:`~repro.serving.protocol.LocateRequest` /
:class:`~repro.serving.protocol.RangeRequest`), the same
:class:`~repro.serving.protocol.QueryResult` out, and the same exception
classes on failure — the server sends the engine's exception type name in
its JSON error body and the client re-raises it from
:mod:`repro.exceptions`, so ``except ServingError`` works identically
in-process and over the wire.  What the transport adds is handled here so
callers never see it:

* **connection reuse** — one persistent HTTP/1.1 connection per thread
  (``threading.local``), so a client shared across worker threads is safe
  and each thread pays the TCP handshake once;
* **retries** — idempotent requests (queries and reads) are retried with
  exponential backoff on connection-level failures; admin mutations are
  never retried (a replayed ``deploy`` would create a second version);
* **batching** — :meth:`locate_points` splits arbitrarily large
  coordinate batches into bounded requests and pins every chunk after the
  first to the version that answered the first, so a hot-swap in the
  middle of a split batch cannot produce a half-old/half-new assignment;
* **typed transport errors** — anything below the protocol (refused
  connection, dropped socket, non-JSON response) raises
  :class:`~repro.exceptions.TransportError`;
* **transport negotiation** — ``transport="auto"`` (the default) probes
  ``GET /v1/capabilities`` once and upgrades :meth:`locate_points` to the
  length-prefixed binary wire protocol of :mod:`repro.serving.wire` when
  the server advertises it, falling back to JSON over HTTP silently when
  it does not (an old server without the endpoint answers 404, which is
  the "JSON only" signal).  ``transport="binary"`` demands the upgrade
  and fails typed when the server cannot; ``transport="json+b64"`` (or a
  :class:`~repro.serving.codecs.Codec` instance) pins the JSON dense
  encoding and never probes.  The capabilities probe rides the same
  retry/backoff machinery as every read, and the wire handshake is
  retried with the same policy — a connection blip during negotiation
  degrades exactly like one during a query.
"""

from __future__ import annotations

import http.client
import json
import logging
import socket
import threading
import time
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from ..exceptions import ReproError, ServingError, TransportError
from .codecs import Codec, JsonB64Codec, decode_b64_array, resolve_codec
from .http import DEFAULT_PORT
from .protocol import LocateRequest, QueryResult, RangeRequest
from .wire import WireConnection, error_to_exception

__all__ = ["ServingClient"]

logger = logging.getLogger(__name__)

#: Default maximum points per locate request; batches above it are split.
#: 50k points is ~2 MB of JSON per direction — large enough to amortise
#: the HTTP round-trip, small enough to keep per-request latency bounded.
DEFAULT_BATCH_SIZE = 50_000

#: The stateless codec behind the HTTP dense encoding — the same class
#: the server negotiates as ``json+b64`` on the wire plane, so client
#: and server bodies cannot drift.
_DENSE_CODEC = JsonB64Codec()


#: The typed exception a server-side JSON error body maps back to.  Both
#: transports carry the same ``{"type", "message"}`` error body, so the
#: mapping lives once in :mod:`repro.serving.wire`; this name remains as
#: the historical import point.
_exception_for = error_to_exception


class ServingClient:
    """Call a :class:`~repro.serving.http.ServingHTTPServer` like an engine.

    Parameters
    ----------
    host / port:
        The serving service's bind address.
    timeout:
        Socket timeout per request, seconds.
    retries:
        How many times a *read* request is retried after a
        connection-level failure (total attempts = ``retries + 1``).
        Engine-side errors (unknown deployment, bad payload) are never
        retried — they are deterministic.
    backoff:
        Base delay between retries, seconds; doubles per attempt.
    batch_size:
        Largest point count per locate request;
        :meth:`locate_points` splits bigger batches transparently.
    transport:
        ``"auto"`` (default) negotiates the best transport the server
        offers — the binary wire protocol when advertised by
        ``GET /v1/capabilities``, JSON over HTTP otherwise (including
        against servers that predate the endpoint entirely).
        ``"binary"`` requires the wire upgrade and raises
        :class:`~repro.exceptions.TransportError` when the server cannot
        provide it; ``"json+b64"`` (aliases ``"json"``, ``"dense"``, or a
        :class:`~repro.serving.codecs.Codec` instance) pins the JSON
        dense encoding over HTTP without probing.  Only the dense batch
        path (:meth:`locate_points`) rides the wire; typed requests and
        admin verbs always use HTTP.

    The client is usable as a context manager; :meth:`close` drops every
    thread's persistent connection.
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = DEFAULT_PORT,
        timeout: float = 30.0,
        retries: int = 2,
        backoff: float = 0.1,
        batch_size: int = DEFAULT_BATCH_SIZE,
        transport: Union[str, Codec] = "auto",
    ) -> None:
        if retries < 0:
            raise TransportError(f"retries must be >= 0, got {retries}")
        if batch_size < 1:
            raise TransportError(f"batch_size must be >= 1, got {batch_size}")
        self.host = host
        self.port = int(port)
        self.timeout = float(timeout)
        self.retries = int(retries)
        self.backoff = float(backoff)
        self.batch_size = int(batch_size)
        if isinstance(transport, str) and transport == "auto":
            self._requested = "auto"
        else:
            # Canonicalise names/aliases (and accept Codec instances) up
            # front so a typo fails at construction, not first query.
            self._requested = resolve_codec(transport).name
        self._local = threading.local()
        self._connections: List[http.client.HTTPConnection] = []
        self._connections_lock = threading.Lock()
        self._wire_connections: List[WireConnection] = []
        self._negotiate_lock = threading.Lock()
        self._negotiated = False  # guarded-by: self._negotiate_lock
        self._wire_endpoint: Optional[Tuple[str, int]] = None
        self._codec_name = "json+b64"

    # -- transport ------------------------------------------------------------

    def _connection(self) -> http.client.HTTPConnection:
        connection = getattr(self._local, "connection", None)
        if connection is None:
            connection = http.client.HTTPConnection(
                self.host, self.port, timeout=self.timeout
            )
            self._local.connection = connection
            with self._connections_lock:
                self._connections.append(connection)
        return connection

    def _drop_connection(self) -> None:
        connection = getattr(self._local, "connection", None)
        if connection is not None:
            connection.close()
            self._local.connection = None
            with self._connections_lock:
                if connection in self._connections:
                    self._connections.remove(connection)

    def _request(
        self,
        method: str,
        path: str,
        payload: Optional[Dict[str, Any]] = None,
        retry: bool = True,
        raw_body: Optional[Union[str, bytes]] = None,
    ) -> Dict[str, Any]:
        """One HTTP exchange -> parsed JSON, with retries below the protocol.

        Only connection-level failures are retried (and only when
        ``retry`` — admin mutations pass ``False``): an HTTP response, even
        a 5xx, means the server made a decision, and replaying it is the
        caller's call.  ``raw_body`` sends pre-encoded JSON text verbatim
        (the dense locate path assembles its own, skipping ``json.dumps``'s
        escaping scan over megabytes of base64).
        """
        body = raw_body if raw_body is not None else (
            None if payload is None else json.dumps(payload)
        )
        attempts = (self.retries if retry else 0) + 1
        last_error: Optional[Exception] = None
        for attempt in range(attempts):
            if attempt:
                time.sleep(self.backoff * (2 ** (attempt - 1)))
            try:
                connection = self._connection()
                connection.request(
                    method,
                    path,
                    body=body,
                    headers={"Content-Type": "application/json"},
                )
                response = connection.getresponse()
                raw = response.read()  # must drain before connection reuse
            except (OSError, http.client.HTTPException) as exc:
                # Covers refused/reset connections, timeouts and protocol
                # breakage; the stale keep-alive connection is dropped so
                # the retry dials fresh.
                self._drop_connection()
                last_error = exc
                continue
            return self._parse(response.status, raw, path)
        raise TransportError(
            f"{method} {self.url}{path} failed after {attempts} attempt(s): "
            f"{last_error}"
        ) from last_error

    def _parse(self, status: int, raw: bytes, path: str) -> Dict[str, Any]:
        try:
            data = json.loads(raw)
        except json.JSONDecodeError as exc:
            raise TransportError(
                f"non-JSON response (HTTP {status}) from {self.url}{path}: "
                f"{raw[:200]!r}"
            ) from exc
        if isinstance(data, dict) and "error" in data:
            raise _exception_for(data["error"])
        if status != 200:
            raise TransportError(
                f"HTTP {status} from {self.url}{path} without an error body"
            )
        if not isinstance(data, dict):
            raise TransportError(
                f"expected a JSON object from {self.url}{path}, "
                f"got {type(data).__name__}"
            )
        return data

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def close(self) -> None:
        """Close every thread's persistent connection (HTTP and wire)."""
        with self._connections_lock:
            connections, self._connections = self._connections, []
            wire_connections, self._wire_connections = self._wire_connections, []
        for connection in connections:
            connection.close()
        for wire_connection in wire_connections:
            wire_connection.close()
        self._local = threading.local()

    def __enter__(self) -> "ServingClient":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ServingClient({self.url})"

    # -- reads ----------------------------------------------------------------

    def healthz(self) -> Dict[str, Any]:
        """Liveness probe: ``{"status": "ok", "deployments": N}``."""
        return self._request("GET", "/v1/healthz")

    def stats(self) -> Dict[str, Any]:
        """The engine's counters plus its artifact cache's."""
        return self._request("GET", "/v1/stats")

    def deployments(self) -> List[Dict[str, Any]]:
        """The service's deployment table (one row per name)."""
        return self._request("GET", "/v1/deployments")["deployments"]

    # -- transport negotiation ------------------------------------------------

    def capabilities(self) -> Optional[Dict[str, Any]]:
        """``GET /v1/capabilities``, or ``None`` from a server without it.

        The probe rides :meth:`_request`, so it is retried with the same
        backoff as every read; only the *negative* answer — the server
        routed the request and said "unknown endpoint" — means "old
        server, JSON only".  A refused connection still raises
        :class:`~repro.exceptions.TransportError`, because falling back
        to JSON against a dead server would just fail slower.
        """
        try:
            return self._request("GET", "/v1/capabilities")
        except ServingError:
            return None

    @property
    def transport(self) -> str:
        """The negotiated transport: ``"binary"`` or ``"json+b64"``.

        Before the first dense query (or an explicit
        :meth:`capabilities` round) an ``"auto"`` client reports what it
        would use if the server offered nothing: ``"json+b64"``.
        """
        return self._codec_name

    def _ensure_negotiated(self) -> None:
        """Resolve ``transport="auto"``/``"binary"`` against the server, once.

        Thread-safe and idempotent; every dense query funnels through
        here, so the capabilities probe happens at most once per client,
        not per batch.
        """
        if self._negotiated:  # repro: ignore[lock-guarded-attrs] -- double-checked fast path: a stale False only re-enters the lock; bool loads never tear
            return
        with self._negotiate_lock:
            if self._negotiated:
                return
            if self._requested == "json+b64":
                self._negotiated = True  # pinned: nothing to probe
                return
            capabilities = self.capabilities() or {}
            wire = capabilities.get("wire")
            offered = capabilities.get("codecs", [])
            if wire and "binary" in offered:
                self._wire_endpoint = (
                    str(wire.get("host") or self.host),
                    int(wire["port"]),
                )
                self._codec_name = "binary"
            elif self._requested == "binary":
                raise TransportError(
                    "transport='binary' was requested but the server at "
                    f"{self.url} does not offer a binary wire endpoint "
                    "(it predates the wire protocol or runs without one); "
                    "use transport='auto' to fall back to JSON over HTTP"
                )
            self._negotiated = True

    def _wire_connection(self) -> WireConnection:
        """This thread's persistent wire connection, dialling on demand.

        The hello handshake happens inside
        :meth:`~repro.serving.wire.WireConnection.connect`; the caller's
        retry loop covers it, so a blip during negotiation is retried
        exactly like one during a query.
        """
        connection = getattr(self._local, "wire", None)
        if connection is None:
            assert self._wire_endpoint is not None
            connection = WireConnection(
                self._wire_endpoint[0],
                self._wire_endpoint[1],
                timeout=self.timeout,
                codecs=("binary",),
            )
            connection.connect()
            self._local.wire = connection
            with self._connections_lock:
                self._wire_connections.append(connection)
        return connection

    def _drop_wire_connection(self) -> None:
        connection = getattr(self._local, "wire", None)
        if connection is not None:
            connection.close()
            self._local.wire = None
            with self._connections_lock:
                if connection in self._wire_connections:
                    self._wire_connections.remove(connection)

    def _locate_chunk_wire(
        self,
        deployment: str,
        xs: np.ndarray,
        ys: np.ndarray,
        strict: Optional[bool],
        version: Optional[Union[int, str]],
    ) -> Tuple[int, np.ndarray]:
        """One locate chunk over the binary wire, with transport retries.

        Connection-level failures (including a worker killed mid-batch:
        the client sees a reset socket) drop the thread's connection and
        redial — the kernel hands the fresh connection to a live worker,
        making a worker crash invisible above this line.  Engine-side
        typed errors cross the wire once and are never retried, exactly
        like the HTTP path.
        """
        attempts = self.retries + 1
        last_error: Optional[Exception] = None
        for attempt in range(attempts):
            if attempt:
                time.sleep(self.backoff * (2 ** (attempt - 1)))
            try:
                connection = self._wire_connection()
                return connection.locate(
                    deployment, xs, ys, strict=strict, version=version
                )
            except (TransportError, OSError) as exc:
                self._drop_wire_connection()
                last_error = exc
                continue
        raise TransportError(
            f"binary wire locate against "
            f"{self._wire_endpoint[0]}:{self._wire_endpoint[1]} failed after "
            f"{attempts} attempt(s): {last_error}"
        ) from last_error

    # -- queries --------------------------------------------------------------

    def locate(self, request: LocateRequest) -> QueryResult:
        """Answer one typed :class:`LocateRequest` over the wire."""
        return QueryResult.from_dict(
            self._request("POST", "/v1/locate", request.to_dict())
        )

    def range_query(self, request: RangeRequest) -> QueryResult:
        """Answer one typed :class:`RangeRequest` over the wire."""
        return QueryResult.from_dict(
            self._request("POST", "/v1/range", request.to_dict())
        )

    def locate_points(
        self,
        deployment: str,
        xs: Union[np.ndarray, Sequence[float]],
        ys: Union[np.ndarray, Sequence[float]],
        strict: Optional[bool] = None,
        version: Optional[Union[int, str]] = None,
    ) -> np.ndarray:
        """Batch point location, split into bounded requests.

        The network twin of
        :meth:`~repro.serving.engine.ServingEngine.locate_points`: returns
        the assignment array (``-1`` off-map in non-strict mode).  Batches
        above ``batch_size`` points are sent as multiple requests; after
        the first chunk answers, the remaining chunks are pinned to the
        version that answered it, so a hot-swap mid-batch cannot split the
        result across two partitions.

        Coordinates cross the wire in the negotiated encoding: raw
        little-endian float64/int64 frames on the binary wire transport,
        base64 inside the JSON envelope over HTTP — both bit-exact, the
        binary form skipping base64 and JSON entirely.  Use
        :meth:`locate` for the list form.
        """
        # returns: int64[n]
        xs = np.asarray(xs, dtype=float)
        ys = np.asarray(ys, dtype=float)
        if xs.shape != ys.shape or xs.ndim != 1:
            raise TransportError(
                f"locate_points needs two equal-length 1-D coordinate arrays, "
                f"got shapes {xs.shape} and {ys.shape}"
            )
        self._ensure_negotiated()
        if self._wire_endpoint is not None:
            try:
                return self._locate_points_wire(
                    deployment, xs, ys, strict, version
                )
            except TransportError as exc:
                if self._requested == "binary":
                    raise
                # auto: the advertised wire endpoint is unreachable (e.g.
                # every worker is down while HTTP lives on).  Degrade to
                # JSON for this client rather than failing a query the
                # HTTP plane can still answer.
                logger.warning(
                    "binary wire transport failed (%s); falling back to "
                    "JSON over HTTP", exc,
                )
                self._wire_endpoint = None
                self._codec_name = "json+b64"
        pieces: List[np.ndarray] = []
        pinned = version
        for start in range(0, len(xs), self.batch_size) or (0,):
            # The codec assembles the body by hand rather than json.dumps:
            # the base64 alphabet never needs escaping, and the escaping
            # scan over megabytes of it is measurable at benchmark sizes.
            body = _DENSE_CODEC.encode_request(
                deployment,
                xs[start:start + self.batch_size],
                ys[start:start + self.batch_size],
                strict=strict,
                version=pinned,
            )
            answer = self._request("POST", "/v1/locate", raw_body=body)
            if pinned is None or pinned == "latest":
                pinned = answer.get("version")
            try:
                piece = decode_b64_array(
                    answer.get("regions_b64"), "<i8", "regions_b64"
                )
            except ReproError as exc:
                raise TransportError(
                    f"malformed dense locate response: {exc}"
                ) from exc
            # The decoded piece is already little-endian int64; the final
            # concatenate below produces a fresh writable native array, so
            # copying each read-only frombuffer view here was pure overhead.
            pieces.append(piece)
        return np.concatenate(pieces) if pieces else np.empty(0, dtype=int)

    def _locate_points_wire(
        self,
        deployment: str,
        xs: np.ndarray,
        ys: np.ndarray,
        strict: Optional[bool],
        version: Optional[Union[int, str]],
    ) -> np.ndarray:
        """The binary-wire twin of the HTTP dense loop: chunk, pin, stitch.

        Same batch split and same mid-batch pinning discipline — the
        version that answers the first chunk pins the rest, so a hot-swap
        (or a worker respawn onto a newer snapshot) cannot split one
        logical batch across two partitions.
        """
        # returns: int64[n]
        pieces: List[np.ndarray] = []
        pinned = version
        for start in range(0, len(xs), self.batch_size) or (0,):
            answered, piece = self._locate_chunk_wire(
                deployment,
                xs[start:start + self.batch_size],
                ys[start:start + self.batch_size],
                strict,
                pinned,
            )
            if pinned is None or pinned == "latest":
                pinned = answered
            pieces.append(piece)
        return np.concatenate(pieces) if pieces else np.empty(0, dtype=int)

    # -- admin ----------------------------------------------------------------

    def deploy(
        self,
        name: str,
        artifact: str,
        shards: Optional[Tuple[int, int]] = None,
    ) -> Dict[str, Any]:
        """Hot-swap ``name`` to the bundle at ``artifact`` (a server-host path).

        Requires the service to run with admin endpoints enabled.  Never
        retried: a replayed deploy would create a second version.
        """
        payload: Dict[str, Any] = {"name": name, "artifact": artifact}
        if shards is not None:
            payload["shards"] = [int(shards[0]), int(shards[1])]
        return self._request("POST", "/v1/deploy", payload, retry=False)

    def rollback(
        self, name: str, version: Optional[Union[int, str]] = None
    ) -> Dict[str, Any]:
        """Repoint ``name`` at an older (or explicit) version. Admin only."""
        payload: Dict[str, Any] = {"name": name}
        if version is not None:
            payload["version"] = version
        return self._request("POST", "/v1/rollback", payload, retry=False)

    def swap_shard(
        self, name: str, row: int, col: int, artifact: str
    ) -> Dict[str, Any]:
        """Hot-swap one tile of ``name``'s active sharded version from the
        donor bundle at ``artifact`` (a server-host path). Admin only; never
        retried — a replayed swap would append a second tile version."""
        payload = {
            "deployment": name,
            "row": int(row),
            "col": int(col),
            "artifact": artifact,
        }
        return self._request("POST", "/v1/swap-shard", payload, retry=False)

    def rollback_shard(self, name: str, row: int, col: int) -> Dict[str, Any]:
        """Step one tile of ``name``'s active sharded version back. Admin
        only; never retried, like :meth:`swap_shard`."""
        payload = {"deployment": name, "row": int(row), "col": int(col)}
        return self._request("POST", "/v1/rollback-shard", payload, retry=False)
