"""Spatial substrate: grid geometry, regions, partitions, and spatial indexes.

The paper's algorithms operate over a discrete ``U x V`` base grid overlaid
on the map.  This package provides:

* :class:`~repro.spatial.geometry.Point` and
  :class:`~repro.spatial.geometry.BoundingBox` — continuous-space primitives
  used to place individuals on the map and to convert coordinates to cells.
* :class:`~repro.spatial.grid.Grid` — the base grid, with cell ids and
  coordinate <-> cell mapping.
* :class:`~repro.spatial.region.GridRegion` — a contiguous rectangular block
  of cells (the unit that KD-tree style algorithms split).
* :class:`~repro.spatial.partition.Partition` — a disjoint cover of the grid
  by regions, i.e. a set of neighborhoods.
* :class:`~repro.spatial.kdtree.MedianKDTree` — the standard median-split
  KD-tree used as the paper's main baseline.
* :class:`~repro.spatial.quadtree.QuadTree` — an additional space-covering
  index used for comparison and property tests.
* :mod:`~repro.spatial.queries` — point-location and range queries over
  partitions.
"""

from .geometry import BoundingBox, Point
from .grid import Grid, GridCell, counts_per_cell, sums_per_cell
from .region import CumulativeGrid, GridRegion
from .partition import Partition, single_region_partition, uniform_partition
from .kdtree import KDNode, MedianKDTree, RegionKDTree
from .quadtree import QuadNode, QuadTree
from .queries import PartitionLocator, neighbors_of, range_query, region_containing_cell

__all__ = [
    "BoundingBox",
    "Point",
    "Grid",
    "GridCell",
    "counts_per_cell",
    "sums_per_cell",
    "CumulativeGrid",
    "GridRegion",
    "Partition",
    "single_region_partition",
    "uniform_partition",
    "KDNode",
    "MedianKDTree",
    "RegionKDTree",
    "QuadNode",
    "QuadTree",
    "PartitionLocator",
    "neighbors_of",
    "range_query",
    "region_containing_cell",
]
