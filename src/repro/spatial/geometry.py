"""Continuous-space geometric primitives.

These primitives model the map on which individuals live before their
locations are discretised onto the base grid.  They are deliberately simple
(points and axis-aligned boxes) because the paper's algorithms only ever
reason about rectangular areas.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Iterator, Sequence, Tuple

from ..exceptions import GeometryError


@dataclass(frozen=True, order=True)
class Point:
    """A 2-D point with ``x`` (longitude-like) and ``y`` (latitude-like)."""

    x: float
    y: float

    def distance_to(self, other: "Point") -> float:
        """Euclidean distance to ``other``."""
        return math.hypot(self.x - other.x, self.y - other.y)

    def manhattan_distance_to(self, other: "Point") -> float:
        """L1 distance to ``other``."""
        return abs(self.x - other.x) + abs(self.y - other.y)

    def translated(self, dx: float, dy: float) -> "Point":
        """Return a new point shifted by ``(dx, dy)``."""
        return Point(self.x + dx, self.y + dy)

    def as_tuple(self) -> Tuple[float, float]:
        return (self.x, self.y)


@dataclass(frozen=True)
class BoundingBox:
    """An axis-aligned rectangle ``[min_x, max_x] x [min_y, max_y]``."""

    min_x: float
    min_y: float
    max_x: float
    max_y: float

    def __post_init__(self) -> None:
        if self.min_x > self.max_x or self.min_y > self.max_y:
            raise GeometryError(
                "invalid bounding box: "
                f"({self.min_x}, {self.min_y}) -> ({self.max_x}, {self.max_y})"
            )

    # -- constructors ------------------------------------------------------

    @classmethod
    def from_points(cls, points: Iterable[Point]) -> "BoundingBox":
        """Smallest box enclosing ``points`` (at least one point required)."""
        points = list(points)
        if not points:
            raise GeometryError("cannot build a bounding box from zero points")
        xs = [p.x for p in points]
        ys = [p.y for p in points]
        return cls(min(xs), min(ys), max(xs), max(ys))

    @classmethod
    def unit(cls) -> "BoundingBox":
        """The unit square ``[0, 1] x [0, 1]``."""
        return cls(0.0, 0.0, 1.0, 1.0)

    # -- measures ----------------------------------------------------------

    @property
    def width(self) -> float:
        return self.max_x - self.min_x

    @property
    def height(self) -> float:
        return self.max_y - self.min_y

    @property
    def area(self) -> float:
        return self.width * self.height

    @property
    def perimeter(self) -> float:
        return 2.0 * (self.width + self.height)

    @property
    def center(self) -> Point:
        return Point((self.min_x + self.max_x) / 2.0, (self.min_y + self.max_y) / 2.0)

    # -- predicates --------------------------------------------------------

    def contains_point(self, point: Point) -> bool:
        """True if ``point`` lies inside the box (inclusive of edges)."""
        return self.min_x <= point.x <= self.max_x and self.min_y <= point.y <= self.max_y

    def contains_box(self, other: "BoundingBox") -> bool:
        """True if ``other`` lies entirely inside this box."""
        return (
            self.min_x <= other.min_x
            and self.min_y <= other.min_y
            and self.max_x >= other.max_x
            and self.max_y >= other.max_y
        )

    def intersects(self, other: "BoundingBox") -> bool:
        """True if the two boxes share at least a boundary point."""
        return not (
            self.max_x < other.min_x
            or other.max_x < self.min_x
            or self.max_y < other.min_y
            or other.max_y < self.min_y
        )

    # -- constructive operations -------------------------------------------

    def intersection(self, other: "BoundingBox") -> "BoundingBox | None":
        """The overlapping box, or ``None`` when the boxes are disjoint."""
        if not self.intersects(other):
            return None
        return BoundingBox(
            max(self.min_x, other.min_x),
            max(self.min_y, other.min_y),
            min(self.max_x, other.max_x),
            min(self.max_y, other.max_y),
        )

    def union(self, other: "BoundingBox") -> "BoundingBox":
        """Smallest box enclosing both boxes."""
        return BoundingBox(
            min(self.min_x, other.min_x),
            min(self.min_y, other.min_y),
            max(self.max_x, other.max_x),
            max(self.max_y, other.max_y),
        )

    def split_horizontal(self, y: float) -> Tuple["BoundingBox", "BoundingBox"]:
        """Split into a bottom and a top box at height ``y``."""
        if not self.min_y <= y <= self.max_y:
            raise GeometryError(f"split coordinate {y} outside [{self.min_y}, {self.max_y}]")
        bottom = BoundingBox(self.min_x, self.min_y, self.max_x, y)
        top = BoundingBox(self.min_x, y, self.max_x, self.max_y)
        return bottom, top

    def split_vertical(self, x: float) -> Tuple["BoundingBox", "BoundingBox"]:
        """Split into a left and a right box at abscissa ``x``."""
        if not self.min_x <= x <= self.max_x:
            raise GeometryError(f"split coordinate {x} outside [{self.min_x}, {self.max_x}]")
        left = BoundingBox(self.min_x, self.min_y, x, self.max_y)
        right = BoundingBox(x, self.min_y, self.max_x, self.max_y)
        return left, right

    def corners(self) -> Iterator[Point]:
        """Yield the four corner points counter-clockwise from ``(min_x, min_y)``."""
        yield Point(self.min_x, self.min_y)
        yield Point(self.max_x, self.min_y)
        yield Point(self.max_x, self.max_y)
        yield Point(self.min_x, self.max_y)


def convex_area(points: Sequence[Point]) -> float:
    """Area of the polygon defined by ``points`` via the shoelace formula.

    The points must be given in order (either orientation).  Used by tests to
    cross-check bounding-box areas and by the synthetic zip-code generator.
    """
    if len(points) < 3:
        return 0.0
    total = 0.0
    n = len(points)
    for i in range(n):
        j = (i + 1) % n
        total += points[i].x * points[j].y - points[j].x * points[i].y
    return abs(total) / 2.0
