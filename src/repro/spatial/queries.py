"""Spatial queries over partitions: point location and range queries.

The classification pipeline needs to map every individual to the
neighborhood containing it (point location); the disparity audit needs to
select all neighborhoods intersecting an area of interest (range query).
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

from ..exceptions import PartitionError
from .geometry import BoundingBox, Point
from .grid import Grid
from .partition import Partition
from .region import GridRegion


class PartitionLocator:
    """Point-location structure over a :class:`Partition`.

    Internally uses the partition's dense cell->region label grid, so lookups
    are O(1) per point after O(cells) preprocessing.
    """

    def __init__(self, partition: Partition) -> None:
        self._partition = partition
        self._grid = partition.grid
        self._labels = partition.label_grid

    @property
    def partition(self) -> Partition:
        return self._partition

    def locate_point(self, point: Point) -> int:
        """Index of the neighborhood containing ``point``.

        A true scalar path: the point's cell is read straight off the dense
        label grid without building any intermediate arrays, keeping the
        documented O(1) cost honest.  Raises :class:`PartitionError` when the
        point's cell is not covered (possible only for incomplete partitions).
        """
        cell = self._grid.locate(point)
        index = int(self._labels[cell.row, cell.col])
        if index < 0:
            raise PartitionError(f"point {point} falls in an uncovered cell")
        return index

    def locate_cells(self, rows: Sequence[int], cols: Sequence[int]) -> np.ndarray:
        """Vectorised neighborhood lookup for grid-cell coordinates."""
        return self._partition.assign(rows, cols)

    def locate_coordinates(self, xs: np.ndarray, ys: np.ndarray) -> np.ndarray:
        """Vectorised neighborhood lookup for continuous coordinates."""
        rows, cols = self._grid.locate_many(xs, ys)
        return self._partition.assign(rows, cols)


def range_query(partition: Partition, query: BoundingBox) -> List[int]:
    """Indices of all neighborhoods whose extent intersects ``query``.

    The result preserves the partition's region ordering.
    """
    matches: List[int] = []
    for index, region in enumerate(partition.regions):
        if region.bounds.intersects(query):
            matches.append(index)
    return matches


def region_containing_cell(partition: Partition, row: int, col: int) -> GridRegion:
    """The neighborhood region containing grid cell ``(row, col)``."""
    index = int(partition.assign([row], [col])[0])
    if index < 0:
        raise PartitionError(f"cell ({row}, {col}) is not covered by the partition")
    return partition.regions[index]


def neighbors_of(partition: Partition, index: int) -> List[int]:
    """Indices of neighborhoods sharing a boundary with region ``index``.

    Two rectangular regions are neighbors when they overlap after expanding
    one of them by a single cell in every direction.
    """
    if not 0 <= index < len(partition):
        raise PartitionError(f"region index {index} outside partition of size {len(partition)}")
    target = partition.regions[index]
    grid: Grid = partition.grid
    expanded = GridRegion(
        grid,
        max(target.row_start - 1, 0),
        min(target.row_stop + 1, grid.rows),
        max(target.col_start - 1, 0),
        min(target.col_stop + 1, grid.cols),
    )
    result: List[int] = []
    for other_index, other in enumerate(partition.regions):
        if other_index == index:
            continue
        if expanded.overlaps(other):
            result.append(other_index)
    return result
