"""Partitions of the grid: disjoint covers by neighborhoods.

A :class:`Partition` is an ordered collection of :class:`GridRegion`
neighborhoods that (optionally, when complete) tile the whole base grid with
no overlap — the "complete non-overlapping partitioning" on which
Theorems 1 and 2 are stated.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, Iterator, List, Sequence, Tuple

import numpy as np

from ..exceptions import PartitionError
from .grid import Grid
from .region import GridRegion


def masked_cell_lookup(
    rows: Sequence[int],
    cols: Sequence[int],
    n_rows: int,
    n_cols: int,
    strict: bool,
    lookup: Callable[[np.ndarray, np.ndarray], np.ndarray],
) -> np.ndarray:
    """Bounds-handled cell lookup shared by every cell->region reader.

    Validates shapes, then applies ``lookup`` (an in-grid vectorised
    cell->label function) to the coordinates: all-inside batches in one
    pass, otherwise out-of-grid cells either raise (``strict``) or come
    back as ``-1``.  :meth:`Partition.assign` and the serving layer's
    backend-routed ``locate_cells`` are the same contract over different
    lookups — this helper is that contract, written once.
    """
    rows = np.asarray(rows, dtype=int)
    cols = np.asarray(cols, dtype=int)
    if rows.shape != cols.shape:
        raise PartitionError("rows and cols must have the same shape")
    if rows.size == 0:
        return np.empty(0, dtype=int)
    inside = (rows >= 0) & (rows < n_rows) & (cols >= 0) & (cols < n_cols)
    if bool(np.all(inside)):
        return lookup(rows, cols)
    if strict:
        raise PartitionError("cell coordinates outside the grid")
    result = np.full(rows.shape, -1, dtype=int)
    result[inside] = lookup(rows[inside], cols[inside])
    return result


class Partition:
    """An ordered set of disjoint neighborhoods over a grid.

    Parameters
    ----------
    grid:
        The base grid.
    regions:
        Neighborhood regions.  They must be pairwise disjoint; completeness
        (covering every cell) is validated by :meth:`validate_complete` and by
        the constructor when ``require_complete`` is true.
    require_complete:
        When true (default), the regions must tile the entire grid.
    """

    def __init__(
        self,
        grid: Grid,
        regions: Iterable[GridRegion],
        require_complete: bool = True,
    ) -> None:
        self._grid = grid
        self._regions: Tuple[GridRegion, ...] = tuple(regions)
        if not self._regions:
            raise PartitionError("a partition needs at least one region")
        for region in self._regions:
            if region.grid != grid:
                raise PartitionError("all regions must reference the partition's grid")
        self._validate_disjoint()
        if require_complete:
            self.validate_complete()
        self._label_grid = self._build_label_grid()

    # -- invariants -----------------------------------------------------------

    def _validate_disjoint(self) -> None:
        covered = np.zeros(self._grid.shape, dtype=int)
        for region in self._regions:
            covered[region.row_start:region.row_stop, region.col_start:region.col_stop] += 1
        if int(covered.max(initial=0)) > 1:
            raise PartitionError("regions overlap: some grid cell is covered twice")
        self._coverage = covered

    def validate_complete(self) -> None:
        """Raise :class:`PartitionError` unless every grid cell is covered."""
        if int(self._coverage.min(initial=1)) < 1:
            missing = int(np.count_nonzero(self._coverage == 0))
            raise PartitionError(f"partition is incomplete: {missing} cells uncovered")

    @property
    def is_complete(self) -> bool:
        """True when the regions tile the entire grid."""
        return bool(np.all(self._coverage >= 1))

    def _build_label_grid(self) -> np.ndarray:
        labels = np.full(self._grid.shape, -1, dtype=int)
        for idx, region in enumerate(self._regions):
            labels[region.row_start:region.row_stop, region.col_start:region.col_stop] = idx
        labels.setflags(write=False)
        return labels

    # -- basic accessors ----------------------------------------------------------

    @property
    def grid(self) -> Grid:
        return self._grid

    @property
    def regions(self) -> Tuple[GridRegion, ...]:
        return self._regions

    @property
    def label_grid(self) -> np.ndarray:
        """Dense ``rows x cols`` cell->region index grid (read-only).

        ``label_grid[r, c]`` is the index of the region covering cell
        ``(r, c)``, or ``-1`` for uncovered cells of incomplete partitions.
        This is the array the serving layer answers batched lookups from.
        """
        return self._label_grid

    def __len__(self) -> int:
        return len(self._regions)

    def __iter__(self) -> Iterator[GridRegion]:
        return iter(self._regions)

    def __getitem__(self, index: int) -> GridRegion:
        return self._regions[index]

    def __repr__(self) -> str:
        return f"Partition({len(self._regions)} regions over {self._grid.rows}x{self._grid.cols} grid)"

    # -- assignment ------------------------------------------------------------------

    def assign(
        self, rows: Sequence[int], cols: Sequence[int], strict: bool = True
    ) -> np.ndarray:
        """Neighborhood index for each record given its grid-cell coordinates.

        Returns an integer array; ``-1`` marks records whose cell is not
        covered (possible for incomplete partitions and, when ``strict`` is
        false, for coordinates outside the grid).

        Parameters
        ----------
        rows, cols:
            Per-record cell coordinates (same shape).
        strict:
            When true (default), coordinates outside the grid raise
            :class:`PartitionError` — the historical contract, right for
            build-time callers whose coordinates come from the grid itself.
            When false, out-of-grid coordinates map to ``-1`` instead, so
            the serving path can answer "not on this map" without an
            exception round-trip per stray point.
        """
        return masked_cell_lookup(
            rows,
            cols,
            self._grid.rows,
            self._grid.cols,
            strict,
            lambda r, c: self._label_grid[r, c],
        )

    def region_sizes(self, rows: Sequence[int], cols: Sequence[int]) -> np.ndarray:
        """Number of records per neighborhood, ordered like :attr:`regions`."""
        assignment = self.assign(rows, cols)
        sizes = np.zeros(len(self._regions), dtype=int)
        valid = assignment >= 0
        np.add.at(sizes, assignment[valid], 1)
        return sizes

    # -- structure comparisons ----------------------------------------------------------

    def is_refinement_of(self, coarser: "Partition") -> bool:
        """True when this partition sub-partitions ``coarser``.

        Each region of ``self`` must lie entirely inside one region of
        ``coarser`` — the "sub-partitioning" relation used by Theorem 2.
        """
        if self._grid != coarser.grid:
            return False
        for region in self._regions:
            if not any(parent.covers(region) for parent in coarser.regions):
                return False
        return True

    def summary(self) -> Dict[str, float]:
        """Lightweight descriptive statistics used in reports and logging."""
        areas = np.array([region.n_cells for region in self._regions], dtype=float)
        return {
            "n_regions": float(len(self._regions)),
            "min_cells": float(areas.min()),
            "max_cells": float(areas.max()),
            "mean_cells": float(areas.mean()),
        }


def uniform_partition(grid: Grid, n_row_blocks: int, n_col_blocks: int) -> Partition:
    """Partition the grid into an ``n_row_blocks x n_col_blocks`` array of tiles.

    Used by the Grid (Reweighting) baseline, which keeps neighborhoods as
    regular tiles and mitigates unfairness by re-weighting instead of by
    re-districting.
    """
    if n_row_blocks < 1 or n_col_blocks < 1:
        raise PartitionError("block counts must be positive")
    if n_row_blocks > grid.rows or n_col_blocks > grid.cols:
        raise PartitionError(
            f"cannot cut {grid.rows}x{grid.cols} grid into "
            f"{n_row_blocks}x{n_col_blocks} blocks"
        )
    row_edges = np.linspace(0, grid.rows, n_row_blocks + 1).astype(int)
    col_edges = np.linspace(0, grid.cols, n_col_blocks + 1).astype(int)
    regions: List[GridRegion] = []
    for i in range(n_row_blocks):
        if row_edges[i + 1] <= row_edges[i]:
            continue
        for j in range(n_col_blocks):
            if col_edges[j + 1] <= col_edges[j]:
                continue
            regions.append(
                GridRegion(grid, row_edges[i], row_edges[i + 1], col_edges[j], col_edges[j + 1])
            )
    return Partition(grid, regions)


def single_region_partition(grid: Grid) -> Partition:
    """The trivial partition with one neighborhood covering the whole grid."""
    return Partition(grid, [GridRegion.full(grid)])
