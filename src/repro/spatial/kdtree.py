"""Median-split KD-tree over grid regions.

This is the "Median KD-tree" baseline of the paper: the classic KD-tree
construction that splits each node at the data median along alternating axes,
adapted to the discrete base grid (a split index is a row/column boundary of
the region, so the resulting leaves are rectangular cell blocks that cover the
whole domain).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence, Tuple

import numpy as np

from ..config import DEFAULT_SPLIT_ENGINE, validate_split_engine
from ..exceptions import ConfigurationError, SplitError
from .grid import Grid, counts_per_cell
from .partition import Partition
from .region import CumulativeGrid, GridRegion


@dataclass
class KDNode:
    """A node of a (fair or median) KD-tree over grid regions."""

    region: GridRegion
    depth: int
    axis: Optional[int] = None
    split_index: Optional[int] = None
    left: Optional["KDNode"] = None
    right: Optional["KDNode"] = None
    metadata: dict = field(default_factory=dict)

    @property
    def is_leaf(self) -> bool:
        return self.left is None and self.right is None

    def leaves(self) -> List["KDNode"]:
        """All leaf nodes under (and including) this node, left-to-right."""
        if self.is_leaf:
            return [self]
        result: List[KDNode] = []
        if self.left is not None:
            result.extend(self.left.leaves())
        if self.right is not None:
            result.extend(self.right.leaves())
        return result

    def height(self) -> int:
        """Height of the subtree rooted at this node (leaf = 0)."""
        if self.is_leaf:
            return 0
        left_height = self.left.height() if self.left is not None else 0
        right_height = self.right.height() if self.right is not None else 0
        return 1 + max(left_height, right_height)

    def count_nodes(self) -> int:
        """Total number of nodes in the subtree."""
        total = 1
        if self.left is not None:
            total += self.left.count_nodes()
        if self.right is not None:
            total += self.right.count_nodes()
        return total


SplitChooser = Callable[[GridRegion, int], Optional[int]]


class RegionKDTree:
    """Generic KD-tree construction over grid regions.

    The split point for each node is delegated to a ``choose_split`` callable
    (region, axis) -> region-local index or ``None`` when the node should stay
    a leaf.  :class:`MedianKDTree` and the fair variants in
    :mod:`repro.core` build on this class, so tree mechanics (axis
    alternation, height control, leaf collection) live in exactly one place.
    """

    def __init__(self, grid: Grid, max_height: int, choose_split: SplitChooser) -> None:
        if max_height < 0:
            raise ValueError(f"max_height must be non-negative, got {max_height}")
        self._grid = grid
        self._max_height = int(max_height)
        self._choose_split = choose_split
        self._root: Optional[KDNode] = None

    @property
    def grid(self) -> Grid:
        return self._grid

    @property
    def max_height(self) -> int:
        return self._max_height

    @property
    def root(self) -> Optional[KDNode]:
        return self._root

    def build(self) -> KDNode:
        """Construct the tree (depth-first) and return its root."""
        self._root = self._build_node(GridRegion.full(self._grid), depth=0)
        return self._root

    def _build_node(self, region: GridRegion, depth: int) -> KDNode:
        node = KDNode(region=region, depth=depth)
        if depth >= self._max_height:
            return node
        axis, split_index = self._resolve_split(region, depth % 2)
        if split_index is None:
            return node
        node.axis = axis
        node.split_index = split_index
        left_region, right_region = region.split(axis, split_index)
        node.left = self._build_node(left_region, depth + 1)
        node.right = self._build_node(right_region, depth + 1)
        return node

    def _resolve_split(self, region: GridRegion, axis: int) -> Tuple[int, Optional[int]]:
        """Pick the axis and split index for ``region``.

        Tries the preferred axis first; when the region cannot be split along
        it (a single row or column remains) the other axis is tried, so the
        tree keeps refining dense areas as long as any split is possible.
        """
        for candidate_axis in (axis, 1 - axis):
            if not region.can_split(candidate_axis):
                continue
            index = self._choose_split(region, candidate_axis)
            if index is not None:
                return candidate_axis, index
        return axis, None

    def leaf_partition(self) -> Partition:
        """Return the partition induced by the tree's leaves."""
        if self._root is None:
            self.build()
        assert self._root is not None
        regions = [leaf.region for leaf in self._root.leaves()]
        return Partition(self._grid, regions)


class MedianKDTree(RegionKDTree):
    """Standard KD-tree that splits each region at the data median.

    Parameters
    ----------
    grid:
        The base grid.
    cell_rows, cell_cols:
        Grid-cell coordinates of every record; the median is computed over
        records, so dense areas end up in smaller leaves (the usual KD-tree
        adaptivity the paper keeps as a baseline).
    max_height:
        Tree height ``th``; the tree has at most ``2**th`` leaves.
    split_engine:
        ``"prefix_sum"`` (default) computes every node's median from a
        cumulative count table built once at construction; ``"record_scan"``
        re-scans the coordinate arrays per node (the original path, kept for
        equivalence testing).  Both produce identical trees.
    """

    def __init__(
        self,
        grid: Grid,
        cell_rows: Sequence[int],
        cell_cols: Sequence[int],
        max_height: int,
        split_engine: str = DEFAULT_SPLIT_ENGINE,
    ) -> None:
        self._cell_rows = np.asarray(cell_rows, dtype=int)
        self._cell_cols = np.asarray(cell_cols, dtype=int)
        if self._cell_rows.shape != self._cell_cols.shape:
            raise SplitError("cell_rows and cell_cols must have the same shape")
        validate_split_engine(split_engine)
        if split_engine == "prefix_sum":
            self._count_table: Optional[CumulativeGrid] = CumulativeGrid(
                grid, counts_per_cell(grid, self._cell_rows, self._cell_cols)
            )
        elif split_engine == "record_scan":
            self._count_table = None
        else:
            # A name in the registry this class does not implement yet:
            # fail loudly rather than silently falling back to a scan.
            raise ConfigurationError(
                f"MedianKDTree does not implement split engine {split_engine!r}"
            )
        self._split_engine = split_engine
        super().__init__(grid, max_height, self._median_split)

    @property
    def split_engine(self) -> str:
        """Name of the engine used to locate per-node medians."""
        return self._split_engine

    def _median_split(self, region: GridRegion, axis: int) -> Optional[int]:
        """Region-local index of the data median along ``axis``."""
        if self._count_table is not None:
            return self._median_split_prefix(region, axis)
        mask = region.member_mask(self._cell_rows, self._cell_cols)
        if axis == 0:
            coords = self._cell_rows[mask] - region.row_start
            extent = region.n_rows
        else:
            coords = self._cell_cols[mask] - region.col_start
            extent = region.n_cols
        if extent < 2:
            return None
        if coords.size == 0:
            # No data in this region: split geometrically in half so the
            # domain is still fully covered at the requested granularity.
            return extent // 2
        median = float(np.median(coords))
        index = int(np.floor(median)) + 1
        # Clamp into the valid split range [1, extent - 1].
        return int(min(max(index, 1), extent - 1))

    def _median_split_prefix(self, region: GridRegion, axis: int) -> Optional[int]:
        """Median from per-line record counts (no record scan).

        The k-th order statistic of the region-local coordinates is read off
        the cumulative line counts, so the result matches the record-scan
        median exactly: all quantities involved are integers.
        """
        line_counts = self._count_table.line_sums(region, axis)
        extent = line_counts.shape[0]
        if extent < 2:
            return None
        total = int(line_counts.sum())
        if total == 0:
            return extent // 2
        cumulative = np.cumsum(line_counts)

        def order_statistic(k: int) -> int:
            """Value of the k-th smallest coordinate (1-indexed rank)."""
            return int(np.searchsorted(cumulative, k, side="left"))

        if total % 2:
            floored_median = order_statistic((total + 1) // 2)
        else:
            lower = order_statistic(total // 2)
            upper = order_statistic(total // 2 + 1)
            floored_median = (lower + upper) // 2
        index = floored_median + 1
        return int(min(max(index, 1), extent - 1))
