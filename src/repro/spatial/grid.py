"""The ``U x V`` base grid overlaid on the map.

Every individual's location is reported as the identifier of the grid cell
that encloses it (Section 2.1 of the paper).  The grid therefore defines the
finest spatial granularity available to any partitioning algorithm.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Sequence, Tuple

import numpy as np

from ..exceptions import GridError
from .geometry import BoundingBox, Point


@dataclass(frozen=True)
class GridCell:
    """A single cell of the base grid, identified by (row, col)."""

    row: int
    col: int

    def as_tuple(self) -> Tuple[int, int]:
        return (self.row, self.col)


class Grid:
    """A ``rows x cols`` grid covering a rectangular map extent.

    Parameters
    ----------
    rows, cols:
        Number of grid rows (the "U" dimension) and columns ("V").
    bounds:
        The map extent covered by the grid.  Defaults to the unit square.
    """

    def __init__(self, rows: int, cols: int, bounds: BoundingBox | None = None) -> None:
        if rows < 1 or cols < 1:
            raise GridError(f"grid dimensions must be positive, got {rows}x{cols}")
        self._rows = int(rows)
        self._cols = int(cols)
        self._bounds = bounds or BoundingBox.unit()
        if self._bounds.width <= 0 or self._bounds.height <= 0:
            raise GridError("grid bounds must have positive width and height")

    # -- basic properties ----------------------------------------------------

    @property
    def rows(self) -> int:
        return self._rows

    @property
    def cols(self) -> int:
        return self._cols

    @property
    def shape(self) -> Tuple[int, int]:
        return (self._rows, self._cols)

    @property
    def n_cells(self) -> int:
        return self._rows * self._cols

    @property
    def bounds(self) -> BoundingBox:
        return self._bounds

    @property
    def cell_width(self) -> float:
        return self._bounds.width / self._cols

    @property
    def cell_height(self) -> float:
        return self._bounds.height / self._rows

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Grid):
            return NotImplemented
        return self.shape == other.shape and self.bounds == other.bounds

    def __hash__(self) -> int:
        return hash((self.shape, self._bounds))

    def __repr__(self) -> str:
        return f"Grid({self._rows}x{self._cols}, bounds={self._bounds})"

    # -- cell id mapping -------------------------------------------------------

    def cell_id(self, row: int, col: int) -> int:
        """Flattened (row-major) identifier of cell ``(row, col)``."""
        self._check_cell(row, col)
        return row * self._cols + col

    def cell_from_id(self, cell_id: int) -> GridCell:
        """Inverse of :meth:`cell_id`."""
        if not 0 <= cell_id < self.n_cells:
            raise GridError(f"cell id {cell_id} outside [0, {self.n_cells})")
        return GridCell(cell_id // self._cols, cell_id % self._cols)

    def _check_cell(self, row: int, col: int) -> None:
        if not (0 <= row < self._rows and 0 <= col < self._cols):
            raise GridError(
                f"cell ({row}, {col}) outside grid of shape {self._rows}x{self._cols}"
            )

    # -- coordinate <-> cell -----------------------------------------------------

    def locate(self, point: Point) -> GridCell:
        """Return the cell enclosing ``point``.

        Points on the maximal boundary are clamped into the last row/column so
        the grid covers the closed map extent.
        """
        if not self._bounds.contains_point(point):
            raise GridError(f"point {point} outside grid bounds {self._bounds}")
        col = int((point.x - self._bounds.min_x) / self.cell_width)
        row = int((point.y - self._bounds.min_y) / self.cell_height)
        row = min(row, self._rows - 1)
        col = min(col, self._cols - 1)
        return GridCell(row, col)

    def locate_many(
        self, xs: np.ndarray, ys: np.ndarray, strict: bool = True
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Vectorised :meth:`locate` for coordinate arrays.

        Returns ``(rows, cols)`` integer arrays.  Points exactly on the
        maximal boundary clamp into the last row/column, like :meth:`locate`.
        Out-of-bounds coordinates raise :class:`GridError` when ``strict``
        (default); with ``strict=False`` they yield ``-1`` in both output
        arrays instead, so batch callers can treat "not on this map" as data.
        """
        xs = np.asarray(xs, dtype=float)
        ys = np.asarray(ys, dtype=float)
        if xs.shape != ys.shape:
            raise GridError("xs and ys must have the same shape")
        inside = (
            (xs >= self._bounds.min_x)
            & (xs <= self._bounds.max_x)
            & (ys >= self._bounds.min_y)
            & (ys <= self._bounds.max_y)
        )
        if bool(np.all(inside)):
            cols = np.minimum(
                ((xs - self._bounds.min_x) / self.cell_width).astype(int, copy=False),
                self._cols - 1,
            )
            rows = np.minimum(
                ((ys - self._bounds.min_y) / self.cell_height).astype(int, copy=False),
                self._rows - 1,
            )
            return rows, cols
        if strict:
            raise GridError("some coordinates fall outside the grid bounds")
        rows = np.full(xs.shape, -1, dtype=int)
        cols = np.full(xs.shape, -1, dtype=int)
        cols[inside] = np.minimum(
            ((xs[inside] - self._bounds.min_x) / self.cell_width).astype(int, copy=False),
            self._cols - 1,
        )
        rows[inside] = np.minimum(
            ((ys[inside] - self._bounds.min_y) / self.cell_height).astype(int, copy=False),
            self._rows - 1,
        )
        return rows, cols

    def cell_bounds(self, row: int, col: int) -> BoundingBox:
        """Geographic extent of cell ``(row, col)``."""
        self._check_cell(row, col)
        min_x = self._bounds.min_x + col * self.cell_width
        min_y = self._bounds.min_y + row * self.cell_height
        return BoundingBox(min_x, min_y, min_x + self.cell_width, min_y + self.cell_height)

    def cell_center(self, row: int, col: int) -> Point:
        """Centre point of cell ``(row, col)``."""
        return self.cell_bounds(row, col).center

    # -- iteration ------------------------------------------------------------

    def cells(self) -> Iterator[GridCell]:
        """Iterate over all cells in row-major order."""
        for row in range(self._rows):
            for col in range(self._cols):
                yield GridCell(row, col)

    def row_slice_bounds(self, row_start: int, row_stop: int,
                         col_start: int, col_stop: int) -> BoundingBox:
        """Geographic extent of the cell block ``[row_start, row_stop) x [col_start, col_stop)``."""
        if row_stop <= row_start or col_stop <= col_start:
            raise GridError("empty cell block")
        self._check_cell(row_start, col_start)
        self._check_cell(row_stop - 1, col_stop - 1)
        lower = self.cell_bounds(row_start, col_start)
        upper = self.cell_bounds(row_stop - 1, col_stop - 1)
        return lower.union(upper)


def _validated_cell_coords(
    grid: Grid, rows: Sequence[int], cols: Sequence[int]
) -> Tuple[np.ndarray, np.ndarray]:
    """Convert per-record cell coordinates to arrays and bounds-check them."""
    rows = np.asarray(rows, dtype=int)
    cols = np.asarray(cols, dtype=int)
    if rows.shape != cols.shape:
        raise GridError("rows and cols must have the same shape")
    if rows.size and (rows.min() < 0 or rows.max() >= grid.rows
                      or cols.min() < 0 or cols.max() >= grid.cols):
        raise GridError("cell coordinates outside the grid")
    return rows, cols


def counts_per_cell(grid: Grid, rows: Sequence[int], cols: Sequence[int]) -> np.ndarray:
    """Histogram of data points per grid cell.

    Parameters
    ----------
    grid:
        The base grid.
    rows, cols:
        Per-record cell coordinates.

    Returns
    -------
    numpy.ndarray
        A ``grid.rows x grid.cols`` integer matrix of record counts.
    """
    # returns: int64[u, v]
    rows, cols = _validated_cell_coords(grid, rows, cols)
    counts = np.zeros(grid.shape, dtype=int)
    np.add.at(counts, (rows, cols), 1)
    return counts


def sums_per_cell(
    grid: Grid, rows: Sequence[int], cols: Sequence[int], values: Sequence[float]
) -> np.ndarray:
    """Per-cell totals of a per-record statistic (a weighted histogram).

    The prefix-sum split engine bins every record's residual into its grid
    cell with this helper before building cumulative tables.

    Parameters
    ----------
    grid:
        The base grid.
    rows, cols:
        Per-record cell coordinates.
    values:
        Per-record statistic to accumulate, aligned with the coordinates.

    Returns
    -------
    numpy.ndarray
        A ``grid.rows x grid.cols`` float matrix of per-cell sums.
    """
    # returns: float64[u, v]
    rows, cols = _validated_cell_coords(grid, rows, cols)
    values = np.asarray(values, dtype=float)
    if values.shape != rows.shape:
        raise GridError("values must have the same shape as the cell coordinates")
    sums = np.zeros(grid.shape, dtype=float)
    np.add.at(sums, (rows, cols), values)
    return sums
