"""Contiguous rectangular blocks of grid cells ("neighborhoods").

The paper's split procedure (Algorithm 2) operates on a tree node that covers
``U' x V'`` cells of the base grid and splits it on a row (or column) index.
:class:`GridRegion` models exactly this unit: a half-open block
``[row_start, row_stop) x [col_start, col_stop)`` of cells of a
:class:`~repro.spatial.grid.Grid`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Tuple

import numpy as np

from ..exceptions import GridError, SplitError
from .geometry import BoundingBox
from .grid import Grid, GridCell


@dataclass(frozen=True)
class GridRegion:
    """A rectangular block of grid cells.

    Attributes
    ----------
    grid:
        The base grid this region belongs to.
    row_start, row_stop:
        Half-open row range (``0 <= row_start < row_stop <= grid.rows``).
    col_start, col_stop:
        Half-open column range.
    """

    grid: Grid
    row_start: int
    row_stop: int
    col_start: int
    col_stop: int

    def __post_init__(self) -> None:
        if not (0 <= self.row_start < self.row_stop <= self.grid.rows):
            raise GridError(
                f"invalid row range [{self.row_start}, {self.row_stop}) for grid with "
                f"{self.grid.rows} rows"
            )
        if not (0 <= self.col_start < self.col_stop <= self.grid.cols):
            raise GridError(
                f"invalid column range [{self.col_start}, {self.col_stop}) for grid with "
                f"{self.grid.cols} columns"
            )

    # -- constructors --------------------------------------------------------

    @classmethod
    def full(cls, grid: Grid) -> "GridRegion":
        """The region covering the entire grid (the KD-tree root)."""
        return cls(grid, 0, grid.rows, 0, grid.cols)

    # -- measures -------------------------------------------------------------

    @property
    def n_rows(self) -> int:
        return self.row_stop - self.row_start

    @property
    def n_cols(self) -> int:
        return self.col_stop - self.col_start

    @property
    def n_cells(self) -> int:
        return self.n_rows * self.n_cols

    @property
    def shape(self) -> Tuple[int, int]:
        return (self.n_rows, self.n_cols)

    @property
    def bounds(self) -> BoundingBox:
        """Geographic extent of the region."""
        return self.grid.row_slice_bounds(
            self.row_start, self.row_stop, self.col_start, self.col_stop
        )

    # -- membership ------------------------------------------------------------

    def contains_cell(self, row: int, col: int) -> bool:
        """True when grid cell ``(row, col)`` lies inside the region."""
        return (
            self.row_start <= row < self.row_stop and self.col_start <= col < self.col_stop
        )

    def member_mask(self, rows: np.ndarray, cols: np.ndarray) -> np.ndarray:
        """Boolean mask of records whose cells fall inside the region."""
        rows = np.asarray(rows, dtype=int)
        cols = np.asarray(cols, dtype=int)
        return (
            (rows >= self.row_start)
            & (rows < self.row_stop)
            & (cols >= self.col_start)
            & (cols < self.col_stop)
        )

    def cells(self) -> Iterator[GridCell]:
        """Iterate over the cells of the region in row-major order."""
        for row in range(self.row_start, self.row_stop):
            for col in range(self.col_start, self.col_stop):
                yield GridCell(row, col)

    # -- splitting ----------------------------------------------------------------

    def can_split(self, axis: int) -> bool:
        """True when the region has more than one row (axis 0) / column (axis 1)."""
        if axis == 0:
            return self.n_rows > 1
        if axis == 1:
            return self.n_cols > 1
        raise ValueError(f"axis must be 0 or 1, got {axis}")

    def split_rows(self, k: int) -> Tuple["GridRegion", "GridRegion"]:
        """Split into rows ``[row_start, row_start+k)`` and the remainder.

        ``k`` counts rows of *this region* (``1 <= k < n_rows``), matching the
        paper's index ``k`` in Algorithm 2.
        """
        if not 1 <= k < self.n_rows:
            raise SplitError(
                f"row split index {k} outside [1, {self.n_rows}) for region {self}"
            )
        mid = self.row_start + k
        lower = GridRegion(self.grid, self.row_start, mid, self.col_start, self.col_stop)
        upper = GridRegion(self.grid, mid, self.row_stop, self.col_start, self.col_stop)
        return lower, upper

    def split_cols(self, k: int) -> Tuple["GridRegion", "GridRegion"]:
        """Split into columns ``[col_start, col_start+k)`` and the remainder."""
        if not 1 <= k < self.n_cols:
            raise SplitError(
                f"column split index {k} outside [1, {self.n_cols}) for region {self}"
            )
        mid = self.col_start + k
        left = GridRegion(self.grid, self.row_start, self.row_stop, self.col_start, mid)
        right = GridRegion(self.grid, self.row_start, self.row_stop, mid, self.col_stop)
        return left, right

    def split(self, axis: int, k: int) -> Tuple["GridRegion", "GridRegion"]:
        """Split along ``axis`` (0 = rows, 1 = columns) at region-local index ``k``."""
        if axis == 0:
            return self.split_rows(k)
        if axis == 1:
            return self.split_cols(k)
        raise ValueError(f"axis must be 0 or 1, got {axis}")

    def covers(self, other: "GridRegion") -> bool:
        """True when ``other`` is entirely contained in this region."""
        return (
            self.grid == other.grid
            and self.row_start <= other.row_start
            and self.row_stop >= other.row_stop
            and self.col_start <= other.col_start
            and self.col_stop >= other.col_stop
        )

    def overlaps(self, other: "GridRegion") -> bool:
        """True when the two regions share at least one cell."""
        if self.grid != other.grid:
            return False
        rows_overlap = self.row_start < other.row_stop and other.row_start < self.row_stop
        cols_overlap = self.col_start < other.col_stop and other.col_start < self.col_stop
        return rows_overlap and cols_overlap

    def __repr__(self) -> str:
        return (
            f"GridRegion(rows=[{self.row_start},{self.row_stop}), "
            f"cols=[{self.col_start},{self.col_stop}))"
        )
