"""Contiguous rectangular blocks of grid cells ("neighborhoods").

The paper's split procedure (Algorithm 2) operates on a tree node that covers
``U' x V'`` cells of the base grid and splits it on a row (or column) index.
:class:`GridRegion` models exactly this unit: a half-open block
``[row_start, row_stop) x [col_start, col_stop)`` of cells of a
:class:`~repro.spatial.grid.Grid`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Tuple

import numpy as np

from ..exceptions import GridError, SplitError
from .geometry import BoundingBox
from .grid import Grid, GridCell


@dataclass(frozen=True)
class GridRegion:
    """A rectangular block of grid cells.

    Attributes
    ----------
    grid:
        The base grid this region belongs to.
    row_start, row_stop:
        Half-open row range (``0 <= row_start < row_stop <= grid.rows``).
    col_start, col_stop:
        Half-open column range.
    """

    grid: Grid
    row_start: int
    row_stop: int
    col_start: int
    col_stop: int

    def __post_init__(self) -> None:
        if not (0 <= self.row_start < self.row_stop <= self.grid.rows):
            raise GridError(
                f"invalid row range [{self.row_start}, {self.row_stop}) for grid with "
                f"{self.grid.rows} rows"
            )
        if not (0 <= self.col_start < self.col_stop <= self.grid.cols):
            raise GridError(
                f"invalid column range [{self.col_start}, {self.col_stop}) for grid with "
                f"{self.grid.cols} columns"
            )

    # -- constructors --------------------------------------------------------

    @classmethod
    def full(cls, grid: Grid) -> "GridRegion":
        """The region covering the entire grid (the KD-tree root)."""
        return cls(grid, 0, grid.rows, 0, grid.cols)

    # -- measures -------------------------------------------------------------

    @property
    def n_rows(self) -> int:
        return self.row_stop - self.row_start

    @property
    def n_cols(self) -> int:
        return self.col_stop - self.col_start

    @property
    def n_cells(self) -> int:
        return self.n_rows * self.n_cols

    @property
    def shape(self) -> Tuple[int, int]:
        return (self.n_rows, self.n_cols)

    @property
    def bounds(self) -> BoundingBox:
        """Geographic extent of the region."""
        return self.grid.row_slice_bounds(
            self.row_start, self.row_stop, self.col_start, self.col_stop
        )

    # -- membership ------------------------------------------------------------

    def contains_cell(self, row: int, col: int) -> bool:
        """True when grid cell ``(row, col)`` lies inside the region."""
        return (
            self.row_start <= row < self.row_stop and self.col_start <= col < self.col_stop
        )

    def member_mask(self, rows: np.ndarray, cols: np.ndarray) -> np.ndarray:
        """Boolean mask of records whose cells fall inside the region."""
        rows = np.asarray(rows, dtype=int)
        cols = np.asarray(cols, dtype=int)
        return (
            (rows >= self.row_start)
            & (rows < self.row_stop)
            & (cols >= self.col_start)
            & (cols < self.col_stop)
        )

    def cells(self) -> Iterator[GridCell]:
        """Iterate over the cells of the region in row-major order."""
        for row in range(self.row_start, self.row_stop):
            for col in range(self.col_start, self.col_stop):
                yield GridCell(row, col)

    # -- splitting ----------------------------------------------------------------

    def can_split(self, axis: int) -> bool:
        """True when the region has more than one row (axis 0) / column (axis 1)."""
        if axis == 0:
            return self.n_rows > 1
        if axis == 1:
            return self.n_cols > 1
        raise ValueError(f"axis must be 0 or 1, got {axis}")

    def split_rows(self, k: int) -> Tuple["GridRegion", "GridRegion"]:
        """Split into rows ``[row_start, row_start+k)`` and the remainder.

        ``k`` counts rows of *this region* (``1 <= k < n_rows``), matching the
        paper's index ``k`` in Algorithm 2.
        """
        if not 1 <= k < self.n_rows:
            raise SplitError(
                f"row split index {k} outside [1, {self.n_rows}) for region {self}"
            )
        mid = self.row_start + k
        lower = GridRegion(self.grid, self.row_start, mid, self.col_start, self.col_stop)
        upper = GridRegion(self.grid, mid, self.row_stop, self.col_start, self.col_stop)
        return lower, upper

    def split_cols(self, k: int) -> Tuple["GridRegion", "GridRegion"]:
        """Split into columns ``[col_start, col_start+k)`` and the remainder."""
        if not 1 <= k < self.n_cols:
            raise SplitError(
                f"column split index {k} outside [1, {self.n_cols}) for region {self}"
            )
        mid = self.col_start + k
        left = GridRegion(self.grid, self.row_start, self.row_stop, self.col_start, mid)
        right = GridRegion(self.grid, self.row_start, self.row_stop, mid, self.col_stop)
        return left, right

    def split(self, axis: int, k: int) -> Tuple["GridRegion", "GridRegion"]:
        """Split along ``axis`` (0 = rows, 1 = columns) at region-local index ``k``."""
        if axis == 0:
            return self.split_rows(k)
        if axis == 1:
            return self.split_cols(k)
        raise ValueError(f"axis must be 0 or 1, got {axis}")

    def center_split_index(self, axis: int) -> int:
        """The region-local index that halves the region along ``axis``.

        Used by splitters that fall back to a geometric split when a region
        holds no records (the domain must still be fully covered at the
        requested granularity).  The region must be splittable along ``axis``.
        """
        extent = self.n_rows if axis == 0 else self.n_cols
        if extent < 2:
            raise SplitError(f"region {self} cannot be split along axis {axis}")
        return extent // 2

    def covers(self, other: "GridRegion") -> bool:
        """True when ``other`` is entirely contained in this region."""
        return (
            self.grid == other.grid
            and self.row_start <= other.row_start
            and self.row_stop >= other.row_stop
            and self.col_start <= other.col_start
            and self.col_stop >= other.col_stop
        )

    def overlaps(self, other: "GridRegion") -> bool:
        """True when the two regions share at least one cell."""
        if self.grid != other.grid:
            return False
        rows_overlap = self.row_start < other.row_stop and other.row_start < self.row_stop
        cols_overlap = self.col_start < other.col_stop and other.col_start < self.col_stop
        return rows_overlap and cols_overlap

    def __repr__(self) -> str:
        return (
            f"GridRegion(rows=[{self.row_start},{self.row_stop}), "
            f"cols=[{self.col_start},{self.col_stop}))"
        )


class CumulativeGrid:
    """2-D cumulative-sum table of a per-cell statistic over the base grid.

    ``table[r, c]`` holds the sum of the statistic over the cell block
    ``[0, r) x [0, c)`` (the table is zero-padded on both leading edges).
    Once built, the total over any rectangular region is four table lookups
    (inclusion-exclusion), and the per-line sums of a region along either
    axis are one vectorised slice subtraction followed by a first difference
    — both independent of the number of records that were binned in.

    This is the summed-area-table trick that the prefix-sum split engine
    uses to evaluate every candidate split of a tree node in time
    proportional to the node's side length instead of the dataset size.
    """

    def __init__(self, grid: Grid, cell_values: np.ndarray) -> None:
        values = np.asarray(cell_values, dtype=float)
        if values.shape != grid.shape:
            raise GridError(
                f"cell values of shape {values.shape} do not match grid {grid.shape}"
            )
        self._grid = grid
        table = np.zeros((grid.rows + 1, grid.cols + 1), dtype=float)
        table[1:, 1:] = values.cumsum(axis=0).cumsum(axis=1)
        self._table = table

    @property
    def grid(self) -> Grid:
        return self._grid

    def _check_region(self, region: GridRegion) -> None:
        if region.grid is not self._grid and region.grid != self._grid:
            raise GridError("region belongs to a different grid than this table")

    def region_sum(self, region: GridRegion) -> float:
        """Total of the statistic inside ``region`` (four table entries)."""
        self._check_region(region)
        t = self._table
        r0, r1 = region.row_start, region.row_stop
        c0, c1 = region.col_start, region.col_stop
        return float(t[r1, c1] - t[r0, c1] - t[r1, c0] + t[r0, c0])

    def line_sums(self, region: GridRegion, axis: int) -> np.ndarray:
        """Per-line totals of the statistic inside ``region`` along ``axis``.

        Line ``i`` is the ``i``-th row (axis 0) or column (axis 1) of the
        region, matching the candidate split lines of Algorithm 2.
        """
        self._check_region(region)
        t = self._table
        r0, r1 = region.row_start, region.row_stop
        c0, c1 = region.col_start, region.col_stop
        if axis == 0:
            cumulative = t[r0 : r1 + 1, c1] - t[r0 : r1 + 1, c0]
        elif axis == 1:
            cumulative = t[r1, c0 : c1 + 1] - t[r0, c0 : c1 + 1]
        else:
            raise ValueError(f"axis must be 0 or 1, got {axis}")
        return cumulative[1:] - cumulative[:-1]
