"""Quadtree partitioner over the base grid.

The paper's future-work section mentions exploring alternative space-covering
index structures; the quadtree is the simplest such structure and is used in
this repository for property tests (it produces valid complete partitions by
construction) and as an additional baseline in the ablation bench.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

import numpy as np

from .grid import Grid
from .partition import Partition
from .region import GridRegion


@dataclass
class QuadNode:
    """A node of the quadtree; leaves carry the region they cover."""

    region: GridRegion
    depth: int
    children: List["QuadNode"] = field(default_factory=list)

    @property
    def is_leaf(self) -> bool:
        return not self.children

    def leaves(self) -> List["QuadNode"]:
        if self.is_leaf:
            return [self]
        result: List[QuadNode] = []
        for child in self.children:
            result.extend(child.leaves())
        return result


class QuadTree:
    """Quadtree that recursively splits regions into (up to) four quadrants.

    A node is split while it is deeper than ``max_depth`` allows, holds more
    than ``max_points`` records, and spans more than one cell in at least one
    dimension.
    """

    def __init__(
        self,
        grid: Grid,
        cell_rows: Sequence[int],
        cell_cols: Sequence[int],
        max_depth: int = 6,
        max_points: int = 32,
    ) -> None:
        if max_depth < 0:
            raise ValueError("max_depth must be non-negative")
        if max_points < 1:
            raise ValueError("max_points must be positive")
        self._grid = grid
        self._rows = np.asarray(cell_rows, dtype=int)
        self._cols = np.asarray(cell_cols, dtype=int)
        self._max_depth = max_depth
        self._max_points = max_points
        self._root: Optional[QuadNode] = None

    @property
    def root(self) -> Optional[QuadNode]:
        return self._root

    def build(self) -> QuadNode:
        """Construct the quadtree and return its root node."""
        self._root = self._build_node(GridRegion.full(self._grid), depth=0)
        return self._root

    def _count_points(self, region: GridRegion) -> int:
        return int(np.count_nonzero(region.member_mask(self._rows, self._cols)))

    def _build_node(self, region: GridRegion, depth: int) -> QuadNode:
        node = QuadNode(region=region, depth=depth)
        if depth >= self._max_depth:
            return node
        if self._count_points(region) <= self._max_points:
            return node
        if region.n_rows < 2 and region.n_cols < 2:
            return node
        node.children = [
            self._build_node(child, depth + 1) for child in self._quadrants(region)
        ]
        return node

    @staticmethod
    def _quadrants(region: GridRegion) -> List[GridRegion]:
        """Split ``region`` into 2 or 4 children at its midpoint."""
        children: List[GridRegion] = []
        row_mid = region.n_rows // 2 if region.n_rows > 1 else 0
        col_mid = region.n_cols // 2 if region.n_cols > 1 else 0
        if row_mid and col_mid:
            bottom, top = region.split_rows(row_mid)
            for half in (bottom, top):
                left, right = half.split_cols(col_mid)
                children.extend([left, right])
        elif row_mid:
            children.extend(region.split_rows(row_mid))
        elif col_mid:
            children.extend(region.split_cols(col_mid))
        return children

    def leaf_partition(self) -> Partition:
        """Return the complete partition induced by the leaves."""
        if self._root is None:
            self.build()
        assert self._root is not None
        regions = [leaf.region for leaf in self._root.leaves()]
        return Partition(self._grid, regions)

    def depth(self) -> int:
        """Maximum leaf depth of the built tree."""
        if self._root is None:
            self.build()
        assert self._root is not None
        return max(leaf.depth for leaf in self._root.leaves())
