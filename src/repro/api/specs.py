"""Declarative run specifications: one serializable value describes a run.

Every layer that needs to say "build *this* partition of *this* city with
*this* model" — the CLI, the experiment sweeps, artifact provenance, the
serving layer — used to say it with ad-hoc kwargs.  These two frozen
dataclasses replace that:

* :class:`PartitionSpec` — which partitioner, at what height, with which
  objective / task weights / split engine;
* :class:`RunSpec` — a partition spec plus the dataset, model, task and
  evaluation controls around it.

Both validate eagerly on construction (method and model names resolve
through the registries, aliases are canonicalised in place) and round-trip
losslessly through plain dicts and JSON::

    RunSpec.from_dict(spec.to_dict()) == spec
    RunSpec.from_json(spec.to_json()) == spec

which is what lets a partition artifact embed the spec that built it and
the serving layer re-validate that spec years later.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field, fields
from typing import Any, Dict, Mapping, Optional, Tuple

from ..config import DEFAULT_SPLIT_ENGINE, validate_split_engine
from ..exceptions import ConfigurationError
from ..registry import MODELS, PARTITIONERS, TASKS
from ..validation import check_keys

__all__ = ["PartitionSpec", "RunSpec"]


@dataclass(frozen=True)
class PartitionSpec:
    """Everything needed to instantiate a partitioner.

    ``method`` may be any registered name or alias; it is canonicalised on
    construction, so two specs naming the same method compare equal.
    ``alphas`` is only meaningful for multi-task methods and rejected
    otherwise; ``None`` means "the method's default".
    """

    method: str = "fair_kdtree"
    height: int = 6
    objective: str = "balance"
    alphas: Optional[Tuple[float, ...]] = None
    split_engine: str = DEFAULT_SPLIT_ENGINE

    def __post_init__(self) -> None:
        entry = PARTITIONERS.resolve(self.method)
        object.__setattr__(self, "method", entry.name)
        if self.height < 0:
            raise ConfigurationError(f"height must be non-negative, got {self.height}")
        validate_split_engine(self.split_engine)
        if self.alphas is not None:
            if not entry.flag("accepts_alphas"):
                raise ConfigurationError(
                    f"method {entry.name!r} does not accept task weights (alphas)"
                )
            object.__setattr__(self, "alphas", tuple(float(a) for a in self.alphas))
        if self.objective != "balance" and not entry.flag("accepts_objective"):
            raise ConfigurationError(
                f"method {entry.name!r} does not accept a split objective"
            )

    def to_dict(self) -> Dict[str, Any]:
        """A JSON-ready dict; ``None`` alphas are omitted for compactness."""
        data = asdict(self)
        if data["alphas"] is None:
            del data["alphas"]
        else:
            data["alphas"] = list(data["alphas"])
        return data

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "PartitionSpec":
        """Validated spec from a dict; unknown keys raise immediately."""
        check_keys("PartitionSpec", data, tuple(f.name for f in fields(cls)))
        kwargs = dict(data)
        if kwargs.get("alphas") is not None:
            kwargs["alphas"] = tuple(kwargs["alphas"])
        return cls(**kwargs)

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "PartitionSpec":
        return cls.from_dict(json.loads(text))


@dataclass(frozen=True)
class RunSpec:
    """A complete run description: dataset, model, task and partition.

    The dataclass is the one value shared by every entry point: the CLI
    serialises it into artifact provenance, :func:`repro.api.build_partition`
    executes it, and the serving engine
    (:meth:`repro.serving.ServingEngine.deploy`) re-validates it on load.
    ``model`` and ``task`` accept registry aliases and are canonicalised.
    ``n_records = None`` means "the city model's default population".
    """

    partition: PartitionSpec = field(default_factory=PartitionSpec)
    city: str = "los_angeles"
    model: str = "logistic_regression"
    task: str = "act"
    grid_rows: int = 32
    grid_cols: int = 32
    n_records: Optional[int] = None
    seed: int = 11
    dataset_seed: int = 7
    test_fraction: float = 0.3
    ece_bins: int = 15

    def __post_init__(self) -> None:
        if not isinstance(self.partition, PartitionSpec):
            raise ConfigurationError(
                "partition must be a PartitionSpec, got "
                f"{type(self.partition).__name__}"
            )
        if not self.city:
            raise ConfigurationError("city must be a non-empty string")
        object.__setattr__(self, "model", MODELS.canonical(self.model))
        object.__setattr__(self, "task", TASKS.canonical(self.task))
        if self.grid_rows < 1 or self.grid_cols < 1:
            raise ConfigurationError(
                f"grid must have positive dimensions, got {self.grid_rows}x{self.grid_cols}"
            )
        if self.n_records is not None and self.n_records < 1:
            raise ConfigurationError(f"n_records must be positive, got {self.n_records}")
        if not 0.0 < self.test_fraction < 1.0:
            raise ConfigurationError(
                f"test_fraction must be in (0, 1), got {self.test_fraction}"
            )
        if self.ece_bins < 1:
            raise ConfigurationError("ece_bins must be >= 1")

    def to_dict(self) -> Dict[str, Any]:
        """A JSON-ready nested dict (``partition`` is its own sub-dict)."""
        data = {f.name: getattr(self, f.name) for f in fields(self)}
        data["partition"] = self.partition.to_dict()
        if data["n_records"] is None:
            del data["n_records"]
        return data

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "RunSpec":
        """Validated spec from a (possibly JSON-decoded) dict.

        Unknown keys raise :class:`~repro.exceptions.ConfigurationError`;
        so do unknown method/model/task names — this is the re-validation
        hook the serving layer runs against stored artifact provenance.
        """
        check_keys("RunSpec", data, tuple(f.name for f in fields(cls)))
        kwargs = dict(data)
        if "partition" in kwargs and not isinstance(kwargs["partition"], PartitionSpec):
            partition = kwargs["partition"]
            if not isinstance(partition, Mapping):
                raise ConfigurationError(
                    "RunSpec 'partition' must be a mapping, got "
                    f"{type(partition).__name__}"
                )
            kwargs["partition"] = PartitionSpec.from_dict(partition)
        return cls(**kwargs)

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "RunSpec":
        return cls.from_dict(json.loads(text))
