"""The facade: resolve specs through the registries and execute them.

These functions are the package's one dispatch path.  Everything that used
to switch on method strings — the experiment runner, the CLI verbs, the
figure sweeps — now builds a spec and calls one of:

* :func:`make_partitioner` — :class:`~repro.api.specs.PartitionSpec` ->
  partitioner instance (pure construction, no training);
* :func:`build_partition` — :class:`~repro.api.specs.RunSpec` -> built
  partition (+ :meth:`BuildResult.save` to persist it with the spec
  embedded as provenance);
* :func:`run_pipeline` — :class:`~repro.api.specs.RunSpec` -> full
  train / partition / re-district / retrain / evaluate loop;
* :func:`open_engine` — a ready :class:`~repro.serving.ServingEngine`
  whose deploys re-validate every bundle's embedded spec; the serve-side
  entry point (``engine.deploy(name, path)``, then query by name).

:func:`open_server` and :func:`open_cache` — the old path-addressed serve
entry points — survive as thin deprecation shims over the engine.

Construction is metadata-driven: each registry entry declares which spec
fields its constructor understands (``accepts_split_engine``,
``accepts_objective``, ``accepts_alphas``, ``height_param``), so a new
partitioner registered with the right flags is immediately buildable,
benchmarkable, servable and persistable with zero facade edits.
"""

from __future__ import annotations

import warnings
from pathlib import Path
from typing import Any, Dict, Mapping, Optional, Union

from ..config import DatasetConfig, GridConfig, ModelConfig, ServingConfig
from ..core.base import SpatialPartitioner
from ..core.pipeline import PipelineResult, RedistrictingPipeline
from ..datasets.dataset import SpatialDataset
from ..datasets.edgap import city_model, load_edgap_city
from ..datasets.labels import LabelTask
from ..exceptions import ExperimentError
from ..io.artifacts import save_partition_artifact
from ..ml.model_selection import ModelFactory, factory_for
from ..registry import MODELS, PARTITIONERS, TASKS
from ..serving import ArtifactCache, PartitionServer, ServingEngine
from ..spatial.partition import Partition
from .specs import PartitionSpec, RunSpec

__all__ = [
    "BuildResult",
    "build_partition",
    "dataset_for",
    "make_partitioner",
    "model_factory_for",
    "open_cache",
    "open_engine",
    "open_server",
    "run_pipeline",
    "task_for",
]

PartitionSpecLike = Union[PartitionSpec, Mapping[str, Any], str]
RunSpecLike = Union[RunSpec, PartitionSpec, Mapping[str, Any], str]


def as_partition_spec(spec: PartitionSpecLike) -> PartitionSpec:
    """Coerce a spec-like value (spec, dict, or bare method name)."""
    if isinstance(spec, PartitionSpec):
        return spec
    if isinstance(spec, str):
        return PartitionSpec(method=spec)
    return PartitionSpec.from_dict(spec)


def as_run_spec(spec: RunSpecLike) -> RunSpec:
    """Coerce a run-spec-like value; a bare :class:`PartitionSpec` or method
    name is wrapped in a default run."""
    if isinstance(spec, RunSpec):
        return spec
    if isinstance(spec, (PartitionSpec, str)):
        return RunSpec(partition=as_partition_spec(spec))
    return RunSpec.from_dict(spec)


def make_partitioner(spec: PartitionSpecLike) -> SpatialPartitioner:
    """Instantiate the partitioner described by ``spec``.

    The registry entry's capability flags decide which spec fields are
    forwarded to the constructor; entries registered without a class
    (``zipcode``) raise :class:`~repro.exceptions.ExperimentError`.
    """
    spec = as_partition_spec(spec)
    entry = PARTITIONERS.resolve(spec.method)
    if entry.obj is None:
        raise ExperimentError(
            f"method {entry.name!r} has no partitioner class ({entry.summary})"
        )
    kwargs: Dict[str, Any] = {}
    if entry.flag("accepts_objective"):
        kwargs["objective"] = spec.objective
    if entry.flag("accepts_split_engine"):
        kwargs["split_engine"] = spec.split_engine
    if entry.flag("accepts_alphas") and spec.alphas is not None:
        kwargs["alphas"] = spec.alphas
    if entry.flag("height_param", "height") == "depth":
        # A quadtree of depth d is granularity-comparable to a KD-tree of
        # height 2d, so the requested height is halved (rounded up).
        return entry.obj(depth=(spec.height + 1) // 2, **kwargs)
    return entry.obj(spec.height, **kwargs)


def model_factory_for(model: Union[str, ModelConfig]) -> ModelFactory:
    """A fresh-classifier factory for a model family name, alias or config."""
    config = model if isinstance(model, ModelConfig) else ModelConfig(kind=MODELS.canonical(model))
    return factory_for(config)


def task_for(task: Union[str, LabelTask]) -> LabelTask:
    """The label task for a registered task name or alias."""
    if isinstance(task, LabelTask):
        return task
    return TASKS.resolve(task).obj()


def dataset_for(spec: RunSpecLike) -> SpatialDataset:
    """Generate the synthetic city dataset a run spec describes."""
    run = as_run_spec(spec)
    model = city_model(run.city)
    config = DatasetConfig(
        city=model.name,
        n_records=run.n_records or model.n_records,
        grid=GridConfig(rows=run.grid_rows, cols=run.grid_cols),
        seed=run.dataset_seed,
    )
    return load_edgap_city(config)


class BuildResult:
    """A built partition plus the spec that produced it.

    Returned by :func:`build_partition`; :meth:`save` persists the
    partition as an artifact bundle whose provenance embeds the originating
    :class:`~repro.api.specs.RunSpec`, so the serving side can re-validate
    exactly what it is serving.
    """

    def __init__(self, spec: RunSpec, dataset: SpatialDataset, output: Any) -> None:
        self.spec = spec
        self.dataset = dataset
        self.output = output

    @property
    def partition(self) -> Partition:
        return self.output.partition

    @property
    def n_neighborhoods(self) -> int:
        return self.output.n_neighborhoods

    def provenance(self) -> Dict[str, Any]:
        """Flat provenance keys (human-scannable) derived from the spec.

        The nested machine-readable spec is added separately by
        :func:`repro.io.artifacts.save_partition_artifact`.
        """
        run = self.spec
        return {
            "city": run.city,
            "method": run.partition.method,
            "height": run.partition.height,
            "split_engine": run.partition.split_engine,
            "model": run.model,
            "task": run.task,
            "grid_rows": run.grid_rows,
            "grid_cols": run.grid_cols,
            "n_records": self.dataset.n_records,
            "seed": run.seed,
            "dataset_seed": run.dataset_seed,
        }

    def save(self, path: Union[str, Path]) -> Path:
        """Write the partition as an artifact bundle with the spec embedded."""
        return save_partition_artifact(
            self.partition, path, provenance=self.provenance(), spec=self.spec
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"BuildResult({self.spec.partition.method!r}, {self.spec.city!r}, "
            f"{self.n_neighborhoods} neighborhoods)"
        )


def build_partition(
    spec: RunSpecLike, dataset: Optional[SpatialDataset] = None
) -> BuildResult:
    """Execute a run spec's build half: dataset -> labels -> partition.

    ``dataset`` short-circuits generation when the caller already holds the
    (cached) dataset the spec describes.
    """
    run = as_run_spec(spec)
    dataset = dataset if dataset is not None else dataset_for(run)
    labels = task_for(run.task).labels(dataset)
    factory = model_factory_for(run.model)
    partitioner = make_partitioner(run.partition)
    output = partitioner.build(dataset, labels, factory)
    return BuildResult(spec=run, dataset=dataset, output=output)


def run_pipeline(
    spec: RunSpecLike, dataset: Optional[SpatialDataset] = None
) -> PipelineResult:
    """Execute a run spec end to end through the redistricting pipeline.

    Covers the full loop of the paper's evaluation: train on the base grid,
    build the partition, re-district, retrain, and score train/test
    accuracy, ECE and ENCE.
    """
    run = as_run_spec(spec)
    dataset = dataset if dataset is not None else dataset_for(run)
    pipeline = RedistrictingPipeline(
        model_factory_for(run.model),
        test_fraction=run.test_fraction,
        ece_bins=run.ece_bins,
        seed=run.seed,
    )
    return pipeline.run(dataset, task_for(run.task), make_partitioner(run.partition))


def open_engine(config: Optional[ServingConfig] = None) -> ServingEngine:
    """A serving engine whose deploys re-validate embedded specs.

    This is the serve-side entry point: ``engine.deploy(name, path)`` loads
    a bundle through the engine's cache, re-validates the
    :class:`~repro.api.specs.RunSpec` embedded at build time (an artifact
    naming a method or model this installation does not know fails loudly
    instead of serving unidentifiable neighborhoods), and makes it the
    named deployment's active version; queries then route by name.
    """
    return ServingEngine(config=config, spec_validator=RunSpec.from_dict)


def open_server(
    path: Union[str, Path], config: Optional[ServingConfig] = None
) -> PartitionServer:
    """Deprecated: open one artifact by path as a ready-to-query server.

    Thin shim over the engine — deploys the bundle into a throwaway
    :class:`~repro.serving.ServingEngine` (same cache-backed loading and
    embedded-spec re-validation) and returns the underlying server.  New
    code should keep the engine and query deployments by name.
    """
    warnings.warn(
        "open_server is deprecated; use open_engine().deploy(name, path) "
        "and query the engine by deployment name",
        DeprecationWarning,
        stacklevel=2,
    )
    engine = open_engine(config)
    engine.deploy("default", path)
    return engine.server_for("default")


def open_cache(config: Optional[ServingConfig] = None) -> ArtifactCache:
    """Deprecated: a path-addressed artifact cache with spec re-validation.

    Thin shim kept for code that addressed partitions by bundle path; the
    engine owns such a cache already (``open_engine().cache``), with the
    same embedded-spec re-validation on every miss.
    """
    warnings.warn(
        "open_cache is deprecated; use open_engine() — the engine's cache "
        "(engine.cache) performs the same spec re-validation",
        DeprecationWarning,
        stacklevel=2,
    )
    return ArtifactCache(config=config, spec_validator=RunSpec.from_dict)
