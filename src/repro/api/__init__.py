"""The public API: one spec, one dispatch, every entry point.

``repro.api`` is the package's single public surface.  It ties together

* the **registries** (:data:`~repro.registry.PARTITIONERS`,
  :data:`~repro.registry.MODELS`, :data:`~repro.registry.TASKS`) — the one
  list of known partitioning methods, classifier families and label tasks,
  populated by ``@register_*`` decorators at the implementations;
* the **specs** (:class:`PartitionSpec`, :class:`RunSpec`) — frozen,
  validated, JSON-round-trippable descriptions of a run; and
* the **facade** (:func:`make_partitioner`, :func:`build_partition`,
  :func:`run_pipeline`, :func:`open_engine`) — the only dispatch from
  names to implementations; and
* the **serving protocol** (:class:`LocateRequest` / :class:`RangeRequest`
  / :class:`QueryResult`) — the typed query vocabulary any transport can
  front the engine with.

Quickstart — build, persist and serve a partition in ~10 lines::

    from repro.api import PartitionSpec, RunSpec, build_partition, open_engine

    spec = RunSpec(
        partition=PartitionSpec(method="fair_kdtree", height=6),
        city="los_angeles",
        model="logistic_regression",
    )
    result = build_partition(spec)
    result.save("la.artifact")            # bundle embeds the spec

    engine = open_engine()
    engine.deploy("la", "la.artifact")    # re-validates the embedded spec
    print(engine.locate_points("la", [0.5], [0.5]))

Registering a new partitioner (``@register_partitioner`` on the class) is
all it takes for the method to show up in the CLI's ``--method`` choices,
the experiment sweeps, artifact provenance and the serving layer; a new
locator backend (``@register_backend``) likewise shows up in
``ServingConfig.backend`` and the CLI's ``--backend`` choices.
"""

from __future__ import annotations

from ..registry import (
    BACKENDS,
    MODELS,
    PARTITIONERS,
    TASKS,
    Registry,
    RegistryEntry,
    register_backend,
    register_model,
    register_partitioner,
    register_task,
)
from ..serving import (
    LATEST,
    LocateRequest,
    QueryResult,
    RangeRequest,
    ServingClient,
    ServingEngine,
    ServingHTTPServer,
    ShardedDeployment,
    serve_engine,
)
from .facade import (
    BuildResult,
    as_partition_spec,
    as_run_spec,
    build_partition,
    dataset_for,
    make_partitioner,
    model_factory_for,
    open_cache,
    open_engine,
    open_server,
    run_pipeline,
    task_for,
)
from .specs import PartitionSpec, RunSpec

__all__ = [
    "Registry",
    "RegistryEntry",
    "PARTITIONERS",
    "MODELS",
    "TASKS",
    "BACKENDS",
    "register_partitioner",
    "register_model",
    "register_task",
    "register_backend",
    "PartitionSpec",
    "RunSpec",
    "as_partition_spec",
    "as_run_spec",
    "make_partitioner",
    "model_factory_for",
    "task_for",
    "dataset_for",
    "build_partition",
    "BuildResult",
    "run_pipeline",
    "ServingEngine",
    "ShardedDeployment",
    "ServingHTTPServer",
    "ServingClient",
    "serve_engine",
    "LocateRequest",
    "RangeRequest",
    "QueryResult",
    "LATEST",
    "open_engine",
    "open_server",
    "open_cache",
]
