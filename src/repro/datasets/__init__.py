"""Data substrate: tabular datasets, the synthetic EdGap generator, labels.

The paper evaluates on two EdGap-derived datasets (Los Angeles, 1153 school
records; Houston, 966 records) with socio-economic features and school
coordinates obtained from NCES.  Neither source is redistributable here, so
:mod:`repro.datasets.edgap` synthesises datasets with the same record counts,
the same feature set, and spatially-correlated feature fields so that the
per-neighborhood miscalibration the paper studies arises organically.
"""

from .schema import FeatureSpec, DatasetSchema, EDGAP_SCHEMA
from .dataset import SpatialDataset
from .edgap import CityModel, city_model, load_edgap_city, list_cities
from .io import CsvLoadReport, load_csv_dataset, save_csv_dataset
from .labels import binary_labels_from_threshold, LabelTask, act_task, employment_task
from .splits import train_test_split_indices, TrainTestSplit, split_dataset
from .zipcodes import ZipcodePartition, synthetic_zipcode_partition, zipcodes_for_dataset

__all__ = [
    "FeatureSpec",
    "DatasetSchema",
    "EDGAP_SCHEMA",
    "SpatialDataset",
    "CityModel",
    "city_model",
    "load_edgap_city",
    "list_cities",
    "CsvLoadReport",
    "load_csv_dataset",
    "save_csv_dataset",
    "binary_labels_from_threshold",
    "LabelTask",
    "act_task",
    "employment_task",
    "train_test_split_indices",
    "TrainTestSplit",
    "split_dataset",
    "ZipcodePartition",
    "synthetic_zipcode_partition",
    "zipcodes_for_dataset",
]
