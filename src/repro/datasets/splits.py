"""Train/test splitting for spatial datasets."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

from ..exceptions import DatasetError
from ..rng import SeedLike, as_generator
from .dataset import SpatialDataset


def train_test_split_indices(
    n_records: int,
    test_fraction: float,
    seed: SeedLike = None,
    labels: np.ndarray | None = None,
) -> Tuple[np.ndarray, np.ndarray]:
    """Shuffled train / test index arrays.

    When ``labels`` is provided the split is stratified so both sides keep
    (approximately) the overall positive rate — important for calibration
    measurements on small datasets.
    """
    if n_records < 2:
        raise DatasetError("need at least two records to split")
    if not 0.0 < test_fraction < 1.0:
        raise DatasetError(f"test_fraction must be in (0, 1), got {test_fraction}")
    rng = as_generator(seed)
    if labels is None:
        permutation = rng.permutation(n_records)
        n_test = max(1, int(round(n_records * test_fraction)))
        n_test = min(n_test, n_records - 1)
        return np.sort(permutation[n_test:]), np.sort(permutation[:n_test])

    labels = np.asarray(labels)
    if labels.shape != (n_records,):
        raise DatasetError("labels must be 1-D and match n_records")
    test_parts = []
    train_parts = []
    for value in np.unique(labels):
        group = np.flatnonzero(labels == value)
        group = rng.permutation(group)
        n_test = int(round(group.size * test_fraction))
        n_test = min(max(n_test, 1 if group.size > 1 else 0), group.size - 1) \
            if group.size > 1 else 0
        test_parts.append(group[:n_test])
        train_parts.append(group[n_test:])
    train_idx = np.sort(np.concatenate(train_parts))
    test_idx = np.sort(np.concatenate(test_parts)) if test_parts else np.empty(0, dtype=int)
    if test_idx.size == 0:
        # Degenerate stratification (e.g. single-class labels): fall back.
        return train_test_split_indices(n_records, test_fraction, rng)
    return train_idx, test_idx


@dataclass(frozen=True)
class TrainTestSplit:
    """A train/test split of one dataset and its label vector."""

    train: SpatialDataset
    test: SpatialDataset
    train_labels: np.ndarray
    test_labels: np.ndarray
    train_indices: np.ndarray
    test_indices: np.ndarray

    @property
    def n_train(self) -> int:
        return self.train.n_records

    @property
    def n_test(self) -> int:
        return self.test.n_records


def split_dataset(
    dataset: SpatialDataset,
    labels: np.ndarray,
    test_fraction: float = 0.3,
    seed: SeedLike = None,
    stratify: bool = True,
) -> TrainTestSplit:
    """Split ``dataset`` and ``labels`` into train and test portions."""
    labels = np.asarray(labels, dtype=int)
    if labels.shape != (dataset.n_records,):
        raise DatasetError("labels must match the dataset's record count")
    train_idx, test_idx = train_test_split_indices(
        dataset.n_records,
        test_fraction,
        seed=seed,
        labels=labels if stratify else None,
    )
    return TrainTestSplit(
        train=dataset.subset(train_idx),
        test=dataset.subset(test_idx),
        train_labels=labels[train_idx],
        test_labels=labels[test_idx],
        train_indices=train_idx,
        test_indices=test_idx,
    )
