"""Label generation: thresholding outcome variables into binary tasks.

Following Section 5.1 of the paper, classification labels are produced by
thresholding outcome variables: average ACT score at 22 (the "ACT task") and
family employment percentage at 10 % (the "Employment task").  The outcome
columns themselves are never used as training features.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..config import PAPER_ACT_THRESHOLD, PAPER_EMPLOYMENT_THRESHOLD
from ..exceptions import DatasetError
from ..registry import register_task
from .dataset import SpatialDataset


def binary_labels_from_threshold(values: np.ndarray, threshold: float) -> np.ndarray:
    """Return ``1`` where ``values >= threshold`` else ``0``."""
    values = np.asarray(values, dtype=float)
    if values.ndim != 1:
        raise DatasetError(f"values must be 1-D, got shape {values.shape}")
    return (values >= threshold).astype(int)


@dataclass(frozen=True)
class LabelTask:
    """A binary classification task derived from one outcome column."""

    name: str
    outcome_column: str
    threshold: float

    def labels(self, dataset: SpatialDataset) -> np.ndarray:
        """Binary labels for ``dataset`` under this task."""
        if self.outcome_column not in dataset.schema:
            raise DatasetError(
                f"dataset {dataset.name!r} has no column {self.outcome_column!r}"
            )
        return binary_labels_from_threshold(dataset.column(self.outcome_column), self.threshold)

    def positive_rate(self, dataset: SpatialDataset) -> float:
        """Fraction of positive labels in ``dataset`` (useful for sanity checks)."""
        labels = self.labels(dataset)
        return float(labels.mean()) if labels.size else 0.0


def act_task(threshold: float = PAPER_ACT_THRESHOLD) -> LabelTask:
    """The paper's primary task: average ACT score >= ``threshold``."""
    return LabelTask(name="ACT", outcome_column="average_act", threshold=threshold)


def employment_task(threshold: float = PAPER_EMPLOYMENT_THRESHOLD) -> LabelTask:
    """The paper's second task: family employment percentage >= ``threshold``."""
    return LabelTask(
        name="Employment", outcome_column="family_employment_rate", threshold=threshold
    )


register_task(
    "act",
    act_task,
    aliases=("ACT",),
    summary="average ACT score >= 22",
    paper_ref="Section 5.1",
)
register_task(
    "employment",
    employment_task,
    aliases=("Employment",),
    summary="family employment percentage >= 10%",
    paper_ref="Section 5.4",
)
