"""Synthetic zip-code partitioning baseline.

The paper uses zip codes as an administrative ("as-is") partitioning baseline
and reports disparity over the ten most populated zip codes (Figure 6).  Real
zip-code shapefiles are not available offline, so this module grows a
contiguous tessellation of the grid from seed cells using a multi-source
region-growing process.  Like real zip codes, the resulting neighborhoods are
contiguous, irregular, and of uneven population.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

import numpy as np

from ..exceptions import PartitionError
from ..rng import SeedLike, as_generator
from ..spatial.grid import Grid
from .dataset import SpatialDataset


class ZipcodePartition:
    """An irregular, contiguous labelling of grid cells into zip-code-like zones.

    Unlike :class:`~repro.spatial.partition.Partition`, zones are arbitrary
    connected cell sets (not rectangles), so this class stores a dense label
    grid directly.  It exposes the same ``assign`` contract, which is all the
    disparity audit needs.
    """

    def __init__(self, grid: Grid, label_grid: np.ndarray) -> None:
        label_grid = np.asarray(label_grid, dtype=int)
        if label_grid.shape != grid.shape:
            raise PartitionError(
                f"label grid shape {label_grid.shape} does not match grid {grid.shape}"
            )
        if label_grid.min() < 0:
            raise PartitionError("zip-code label grid contains uncovered cells")
        self._grid = grid
        self._labels = label_grid
        self._n_zones = int(label_grid.max()) + 1

    @property
    def grid(self) -> Grid:
        return self._grid

    @property
    def n_zones(self) -> int:
        return self._n_zones

    @property
    def label_grid(self) -> np.ndarray:
        view = self._labels.view()
        view.flags.writeable = False
        return view

    def assign(self, rows: Sequence[int], cols: Sequence[int]) -> np.ndarray:
        """Zone index for each record's grid-cell coordinates."""
        rows = np.asarray(rows, dtype=int)
        cols = np.asarray(cols, dtype=int)
        if rows.shape != cols.shape:
            raise PartitionError("rows and cols must have the same shape")
        return self._labels[rows, cols]

    def zone_sizes(self, rows: Sequence[int], cols: Sequence[int]) -> np.ndarray:
        """Number of records per zone."""
        assignment = self.assign(rows, cols)
        sizes = np.zeros(self._n_zones, dtype=int)
        np.add.at(sizes, assignment, 1)
        return sizes

    def top_zones(self, rows: Sequence[int], cols: Sequence[int], k: int = 10) -> List[int]:
        """Indices of the ``k`` most populated zones, most populated first."""
        sizes = self.zone_sizes(rows, cols)
        order = np.argsort(sizes)[::-1]
        return [int(z) for z in order[: min(k, self._n_zones)]]


def synthetic_zipcode_partition(
    grid: Grid,
    n_zones: int = 40,
    seed: SeedLike = None,
) -> ZipcodePartition:
    """Grow ``n_zones`` contiguous zones over ``grid`` by multi-source BFS.

    Seed cells are sampled uniformly; zones then expand one frontier cell at a
    time in random order, which yields irregular but connected shapes.
    """
    if n_zones < 1:
        raise PartitionError("n_zones must be positive")
    if n_zones > grid.n_cells:
        raise PartitionError(
            f"cannot create {n_zones} zones over a grid with {grid.n_cells} cells"
        )
    rng = as_generator(seed)
    labels = np.full(grid.shape, -1, dtype=int)

    flat_seeds = rng.choice(grid.n_cells, size=n_zones, replace=False)
    frontiers: List[List[Tuple[int, int]]] = [[] for _ in range(n_zones)]
    for zone, flat in enumerate(flat_seeds):
        row, col = divmod(int(flat), grid.cols)
        labels[row, col] = zone
        frontiers[zone].append((row, col))

    remaining = grid.n_cells - n_zones
    active = list(range(n_zones))
    while remaining > 0 and active:
        zone = int(rng.choice(active))
        frontier = frontiers[zone]
        expanded = False
        rng.shuffle(frontier)
        for row, col in list(frontier):
            neighbors = [
                (row - 1, col), (row + 1, col), (row, col - 1), (row, col + 1),
            ]
            rng.shuffle(neighbors)
            for nr, nc in neighbors:
                if 0 <= nr < grid.rows and 0 <= nc < grid.cols and labels[nr, nc] < 0:
                    labels[nr, nc] = zone
                    frontier.append((nr, nc))
                    remaining -= 1
                    expanded = True
                    break
            if expanded:
                break
            frontier.remove((row, col))
        if not expanded and not frontier:
            active.remove(zone)

    # Any stranded cells (possible when a zone's frontier is exhausted) are
    # attached to the nearest labelled neighbor to keep the cover complete.
    while np.any(labels < 0):
        unresolved = np.argwhere(labels < 0)
        for row, col in unresolved:
            for nr, nc in ((row - 1, col), (row + 1, col), (row, col - 1), (row, col + 1)):
                if 0 <= nr < grid.rows and 0 <= nc < grid.cols and labels[nr, nc] >= 0:
                    labels[row, col] = labels[nr, nc]
                    break
    return ZipcodePartition(grid, labels)


def zipcodes_for_dataset(
    dataset: SpatialDataset, n_zones: int = 40, seed: SeedLike = None
) -> ZipcodePartition:
    """Convenience wrapper: a zip-code partition over the dataset's grid."""
    return synthetic_zipcode_partition(dataset.grid, n_zones=n_zones, seed=seed)
