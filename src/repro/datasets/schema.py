"""Dataset schemas: named, typed feature columns.

The EdGap-like schema mirrors the socio-economic features the paper uses for
training and the two outcome variables (average ACT score and family
employment percentage) that are thresholded into classification labels and
removed from the training features.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Sequence, Tuple

from ..exceptions import DatasetError


@dataclass(frozen=True)
class FeatureSpec:
    """Description of one feature column."""

    name: str
    description: str
    minimum: float
    maximum: float
    is_outcome: bool = False

    def __post_init__(self) -> None:
        if self.minimum > self.maximum:
            raise DatasetError(
                f"feature {self.name!r}: minimum {self.minimum} exceeds maximum {self.maximum}"
            )

    def clip(self, value: float) -> float:
        """Clamp ``value`` into the feature's valid range."""
        return min(max(value, self.minimum), self.maximum)


class DatasetSchema:
    """An ordered collection of :class:`FeatureSpec` columns."""

    def __init__(self, features: Sequence[FeatureSpec]) -> None:
        if not features:
            raise DatasetError("a schema needs at least one feature")
        names = [spec.name for spec in features]
        if len(set(names)) != len(names):
            raise DatasetError(f"duplicate feature names in schema: {names}")
        self._features: Tuple[FeatureSpec, ...] = tuple(features)
        self._index: Dict[str, int] = {spec.name: i for i, spec in enumerate(self._features)}

    @property
    def features(self) -> Tuple[FeatureSpec, ...]:
        return self._features

    @property
    def names(self) -> Tuple[str, ...]:
        return tuple(spec.name for spec in self._features)

    @property
    def training_names(self) -> Tuple[str, ...]:
        """Names of features that may be used for training (non-outcome)."""
        return tuple(spec.name for spec in self._features if not spec.is_outcome)

    @property
    def outcome_names(self) -> Tuple[str, ...]:
        """Names of outcome variables (used only to derive labels)."""
        return tuple(spec.name for spec in self._features if spec.is_outcome)

    def __len__(self) -> int:
        return len(self._features)

    def __contains__(self, name: str) -> bool:
        return name in self._index

    def index_of(self, name: str) -> int:
        """Column index of feature ``name``."""
        if name not in self._index:
            raise DatasetError(f"unknown feature {name!r}; schema has {self.names}")
        return self._index[name]

    def spec(self, name: str) -> FeatureSpec:
        """The :class:`FeatureSpec` for ``name``."""
        return self._features[self.index_of(name)]


#: Socio-economic features mirroring the EdGap dataset used in the paper.
#: The two outcome columns are thresholded into classification labels and are
#: not part of the training feature set (Section 5.1 / 5.4).
EDGAP_SCHEMA = DatasetSchema(
    [
        FeatureSpec("unemployment_rate", "Neighborhood unemployment rate (percent)", 0.0, 60.0),
        FeatureSpec("college_degree_rate", "Adults holding a college degree (percent)", 0.0, 100.0),
        FeatureSpec("married_rate", "Married households (percent)", 0.0, 100.0),
        FeatureSpec("median_income", "Median household income (thousand USD)", 5.0, 250.0),
        FeatureSpec("reduced_lunch_rate", "Students on free/reduced lunch (percent)", 0.0, 100.0),
        FeatureSpec("average_act", "Average ACT score of the school", 1.0, 36.0, is_outcome=True),
        FeatureSpec(
            "family_employment_rate",
            "Families with at least one employed adult (percent)",
            0.0,
            100.0,
            is_outcome=True,
        ),
    ]
)
