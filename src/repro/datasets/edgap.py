"""Synthetic EdGap-like datasets for Los Angeles and Houston.

The paper evaluates on two EdGap [29] datasets (1153 school records for Los
Angeles, 966 for Houston) with socio-economic features and school locations
from NCES [1].  Those sources cannot be bundled here, so this module builds a
*simulated* equivalent with the properties that actually drive the paper's
results:

1. the same record counts and the same feature set (see
   :data:`~repro.datasets.schema.EDGAP_SCHEMA`);
2. school locations clustered around a handful of population centres, so
   neighborhood sizes are highly uneven (as for real cities);
3. socio-economic features generated from smooth spatial fields, so location
   strongly correlates with the protected outcome — which is exactly why
   per-neighborhood miscalibration appears even when the model looks
   well-calibrated overall (the paper's Figure 6 phenomenon);
4. outcome variables (average ACT, family employment) that depend on the
   socio-economic features *plus* a spatially-varying residual the features
   do not fully explain, which is the source of the spatial bias.

Every quantity is generated from a seeded :class:`numpy.random.Generator`,
so a given :class:`~repro.config.DatasetConfig` always produces the same
dataset.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

import numpy as np

from ..config import DatasetConfig, GridConfig
from ..exceptions import DatasetError
from ..rng import as_generator
from ..spatial.geometry import BoundingBox
from ..spatial.grid import Grid
from .dataset import SpatialDataset
from .schema import EDGAP_SCHEMA


@dataclass(frozen=True)
class PopulationCluster:
    """A population centre: schools are sampled around it."""

    center_x: float
    center_y: float
    spread: float
    weight: float
    affluence: float
    """Relative affluence in [-1, 1]; drives the socio-economic fields."""


@dataclass(frozen=True)
class CityModel:
    """Generative description of one synthetic city."""

    name: str
    n_records: int
    clusters: Tuple[PopulationCluster, ...]
    base_seed: int
    spatial_bias_scale: float = 0.35
    """Strength of the spatially-varying residual that the features do not
    explain; larger values produce stronger per-neighborhood miscalibration."""

    def __post_init__(self) -> None:
        if self.n_records < 1:
            raise DatasetError(f"city {self.name!r} must have at least one record")
        if not self.clusters:
            raise DatasetError(f"city {self.name!r} needs at least one population cluster")


_LOS_ANGELES = CityModel(
    name="los_angeles",
    n_records=1153,
    base_seed=20230205,
    clusters=(
        PopulationCluster(0.30, 0.62, 0.090, 0.30, affluence=0.55),
        PopulationCluster(0.52, 0.48, 0.110, 0.25, affluence=-0.65),
        PopulationCluster(0.72, 0.70, 0.080, 0.18, affluence=0.80),
        PopulationCluster(0.42, 0.25, 0.120, 0.17, affluence=-0.35),
        PopulationCluster(0.82, 0.30, 0.070, 0.10, affluence=0.10),
    ),
    spatial_bias_scale=0.40,
)

_HOUSTON = CityModel(
    name="houston",
    n_records=966,
    base_seed=20230713,
    clusters=(
        PopulationCluster(0.45, 0.55, 0.130, 0.35, affluence=-0.50),
        PopulationCluster(0.68, 0.62, 0.090, 0.25, affluence=0.70),
        PopulationCluster(0.30, 0.35, 0.100, 0.22, affluence=-0.20),
        PopulationCluster(0.60, 0.25, 0.080, 0.18, affluence=0.35),
    ),
    spatial_bias_scale=0.32,
)

_CITIES: Dict[str, CityModel] = {
    "los_angeles": _LOS_ANGELES,
    "houston": _HOUSTON,
}


def list_cities() -> Tuple[str, ...]:
    """Names of the built-in synthetic cities."""
    return tuple(sorted(_CITIES))


def city_model(name: str) -> CityModel:
    """The :class:`CityModel` registered under ``name``."""
    key = name.lower()
    if key not in _CITIES:
        raise DatasetError(f"unknown city {name!r}; available: {list_cities()}")
    return _CITIES[key]


# ---------------------------------------------------------------------------
# Spatial random fields
# ---------------------------------------------------------------------------


def _radial_bumps(
    xs: np.ndarray,
    ys: np.ndarray,
    rng: np.random.Generator,
    n_bumps: int,
    length_scale: float,
) -> np.ndarray:
    """Smooth random field as a sum of Gaussian bumps, standardised to unit scale."""
    centers = rng.uniform(0.0, 1.0, size=(n_bumps, 2))
    amplitudes = rng.normal(0.0, 1.0, size=n_bumps)
    field_values = np.zeros_like(xs, dtype=float)
    inv_two_ls2 = 1.0 / (2.0 * length_scale**2)
    for (cx, cy), amp in zip(centers, amplitudes):
        dist2 = (xs - cx) ** 2 + (ys - cy) ** 2
        field_values += amp * np.exp(-dist2 * inv_two_ls2)
    std = field_values.std()
    if std > 0:
        field_values = (field_values - field_values.mean()) / std
    return field_values


def _cluster_affluence(
    xs: np.ndarray, ys: np.ndarray, clusters: Sequence[PopulationCluster]
) -> np.ndarray:
    """Affluence surface: weighted mixture of the clusters' affluence values."""
    numerator = np.zeros_like(xs, dtype=float)
    denominator = np.zeros_like(xs, dtype=float)
    for cluster in clusters:
        dist2 = (xs - cluster.center_x) ** 2 + (ys - cluster.center_y) ** 2
        kernel = np.exp(-dist2 / (2.0 * cluster.spread**2)) + 1e-6
        numerator += kernel * cluster.affluence
        denominator += kernel
    return numerator / denominator


# ---------------------------------------------------------------------------
# Generation
# ---------------------------------------------------------------------------


def _sample_locations(
    model: CityModel, n_records: int, rng: np.random.Generator
) -> Tuple[np.ndarray, np.ndarray]:
    """Sample school coordinates from the city's cluster mixture."""
    weights = np.array([c.weight for c in model.clusters], dtype=float)
    weights = weights / weights.sum()
    assignments = rng.choice(len(model.clusters), size=n_records, p=weights)
    xs = np.empty(n_records, dtype=float)
    ys = np.empty(n_records, dtype=float)
    for index, cluster in enumerate(model.clusters):
        mask = assignments == index
        count = int(mask.sum())
        if count == 0:
            continue
        xs[mask] = rng.normal(cluster.center_x, cluster.spread, size=count)
        ys[mask] = rng.normal(cluster.center_y, cluster.spread, size=count)
    # Reflect out-of-bounds samples back into the unit square, then clip for
    # numerical safety (reflection keeps clusters near the border dense).
    xs = np.clip(np.abs(xs) % 2.0, 0.0, 2.0)
    xs = np.where(xs > 1.0, 2.0 - xs, xs)
    ys = np.clip(np.abs(ys) % 2.0, 0.0, 2.0)
    ys = np.where(ys > 1.0, 2.0 - ys, ys)
    return np.clip(xs, 0.0, 1.0), np.clip(ys, 0.0, 1.0)


def generate_city(
    model: CityModel,
    grid: Grid,
    n_records: int | None = None,
    seed: int | None = None,
) -> SpatialDataset:
    """Generate the synthetic dataset for ``model``.

    Parameters
    ----------
    model:
        City description (use :func:`city_model` for the built-in cities).
    grid:
        Base grid overlaid on the unit-square map.
    n_records:
        Override the record count (defaults to the city's paper-matching count).
    seed:
        Extra entropy combined with the city's base seed.
    """
    n_records = int(n_records or model.n_records)
    rng = as_generator(model.base_seed if seed is None else model.base_seed + int(seed))

    xs, ys = _sample_locations(model, n_records, rng)
    affluence = _cluster_affluence(xs, ys, model.clusters)
    texture = _radial_bumps(xs, ys, rng, n_bumps=24, length_scale=0.18)
    hidden_bias = _radial_bumps(xs, ys, rng, n_bumps=16, length_scale=0.25)

    noise = rng.normal(0.0, 1.0, size=(n_records, 5))

    unemployment = 12.0 - 7.0 * affluence + 2.0 * texture + 1.5 * noise[:, 0]
    college = 45.0 + 28.0 * affluence + 4.0 * texture + 5.0 * noise[:, 1]
    married = 55.0 + 15.0 * affluence - 3.0 * texture + 6.0 * noise[:, 2]
    income = 62.0 + 45.0 * affluence + 6.0 * texture + 8.0 * noise[:, 3]
    reduced_lunch = 48.0 - 30.0 * affluence - 4.0 * texture + 7.0 * noise[:, 4]

    # Outcomes: depend on the socio-economic profile plus a spatial residual
    # ("hidden_bias") the training features cannot explain.
    socio_score = (
        0.35 * (college - 45.0) / 28.0
        + 0.30 * (income - 62.0) / 45.0
        - 0.20 * (unemployment - 12.0) / 7.0
        - 0.15 * (reduced_lunch - 48.0) / 30.0
    )
    act = (
        21.0
        + 4.5 * socio_score
        + 3.0 * model.spatial_bias_scale * hidden_bias
        + rng.normal(0.0, 1.2, size=n_records)
    )
    family_employment = (
        12.0
        + 6.0 * socio_score
        + 5.0 * model.spatial_bias_scale * hidden_bias
        + rng.normal(0.0, 2.0, size=n_records)
    )

    columns = {
        "unemployment_rate": unemployment,
        "college_degree_rate": college,
        "married_rate": married,
        "median_income": income,
        "reduced_lunch_rate": reduced_lunch,
        "average_act": act,
        "family_employment_rate": family_employment,
    }
    matrix = np.empty((n_records, len(EDGAP_SCHEMA)), dtype=float)
    for name, values in columns.items():
        spec = EDGAP_SCHEMA.spec(name)
        matrix[:, EDGAP_SCHEMA.index_of(name)] = np.clip(values, spec.minimum, spec.maximum)

    return SpatialDataset(
        schema=EDGAP_SCHEMA,
        features=matrix,
        xs=xs,
        ys=ys,
        grid=grid,
        name=model.name,
    )


def load_edgap_city(config: DatasetConfig) -> SpatialDataset:
    """Load (generate) the synthetic EdGap-like dataset described by ``config``."""
    model = city_model(config.city)
    grid = Grid(config.grid.rows, config.grid.cols, BoundingBox.unit())
    return generate_city(model, grid, n_records=config.n_records, seed=config.seed)


def default_config(city: str, grid: GridConfig | None = None, seed: int = 7) -> DatasetConfig:
    """A :class:`DatasetConfig` with the paper-matching record count for ``city``."""
    model = city_model(city)
    return DatasetConfig(
        city=model.name,
        n_records=model.n_records,
        grid=grid or GridConfig(),
        seed=seed,
    )
