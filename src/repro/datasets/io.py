"""Loading real EdGap-style data from CSV.

The experiments in this repository run on the synthetic generator (the real
EdGap / NCES data cannot be redistributed), but users who hold the original
files — or any other socio-economic dataset with school/household coordinates
— can load them through this module and run the exact same pipeline.  The
expected CSV layout is one row per record with:

* one column per feature of the target schema (default
  :data:`~repro.datasets.schema.EDGAP_SCHEMA`), named exactly as the schema
  names them;
* two coordinate columns (default ``longitude`` / ``latitude``), which are
  rescaled to the unit square before the base grid is overlaid.

Values outside a feature's valid range are clipped and reported.
"""

from __future__ import annotations

import csv
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Sequence

import numpy as np

from ..exceptions import DatasetError
from ..spatial.geometry import BoundingBox
from ..spatial.grid import Grid
from .dataset import SpatialDataset
from .schema import DatasetSchema, EDGAP_SCHEMA


@dataclass(frozen=True)
class CsvLoadReport:
    """Diagnostics produced while loading a CSV file."""

    n_rows: int
    n_clipped_values: int
    skipped_rows: int
    columns_used: Sequence[str] = field(default_factory=tuple)


def _rescale_to_unit(values: np.ndarray) -> np.ndarray:
    """Min-max rescale coordinates to [0, 1]; constant columns map to 0.5."""
    low, high = float(values.min()), float(values.max())
    if high <= low:
        return np.full_like(values, 0.5)
    return (values - low) / (high - low)


def load_csv_dataset(
    path: str | Path,
    grid_rows: int = 32,
    grid_cols: int = 32,
    schema: DatasetSchema = EDGAP_SCHEMA,
    x_column: str = "longitude",
    y_column: str = "latitude",
    name: str | None = None,
) -> tuple[SpatialDataset, CsvLoadReport]:
    """Load a CSV file into a :class:`SpatialDataset`.

    Returns the dataset together with a :class:`CsvLoadReport` describing how
    many values were clipped into schema ranges and how many rows were skipped
    because of missing or non-numeric values.
    """
    path = Path(path)
    if not path.exists():
        raise DatasetError(f"CSV file not found: {path}")

    required = list(schema.names) + [x_column, y_column]
    rows: List[Dict[str, str]] = []
    with path.open(newline="", encoding="utf-8") as handle:
        reader = csv.DictReader(handle)
        if reader.fieldnames is None:
            raise DatasetError(f"{path} has no header row")
        missing = [column for column in required if column not in reader.fieldnames]
        if missing:
            raise DatasetError(
                f"{path} is missing required columns {missing}; found {reader.fieldnames}"
            )
        rows = list(reader)
    if not rows:
        raise DatasetError(f"{path} contains a header but no data rows")

    feature_rows: List[List[float]] = []
    xs: List[float] = []
    ys: List[float] = []
    skipped = 0
    clipped = 0
    for row in rows:
        try:
            raw_features = [float(row[column]) for column in schema.names]
            x_value = float(row[x_column])
            y_value = float(row[y_column])
        except (TypeError, ValueError):
            skipped += 1
            continue
        clean = []
        for value, column in zip(raw_features, schema.names):
            spec = schema.spec(column)
            bounded = spec.clip(value)
            if bounded != value:
                clipped += 1
            clean.append(bounded)
        feature_rows.append(clean)
        xs.append(x_value)
        ys.append(y_value)

    if not feature_rows:
        raise DatasetError(f"{path}: every row was skipped (non-numeric or missing values)")

    features = np.asarray(feature_rows, dtype=float)
    xs_arr = _rescale_to_unit(np.asarray(xs, dtype=float))
    ys_arr = _rescale_to_unit(np.asarray(ys, dtype=float))
    grid = Grid(grid_rows, grid_cols, BoundingBox.unit())
    dataset = SpatialDataset(
        schema=schema,
        features=features,
        xs=xs_arr,
        ys=ys_arr,
        grid=grid,
        name=name or path.stem,
    )
    report = CsvLoadReport(
        n_rows=len(feature_rows),
        n_clipped_values=clipped,
        skipped_rows=skipped,
        columns_used=tuple(required),
    )
    return dataset, report


def save_csv_dataset(dataset: SpatialDataset, path: str | Path) -> Path:
    """Write a dataset back to CSV (inverse of :func:`load_csv_dataset`).

    Coordinates are written as ``longitude`` / ``latitude`` in the dataset's
    already-normalised unit-square frame.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    columns = list(dataset.schema.names) + ["longitude", "latitude"]
    with path.open("w", newline="", encoding="utf-8") as handle:
        writer = csv.writer(handle)
        writer.writerow(columns)
        for index in range(dataset.n_records):
            row = [f"{dataset.features[index, j]:.6f}" for j in range(len(dataset.schema))]
            row.extend([f"{dataset.xs[index]:.6f}", f"{dataset.ys[index]:.6f}"])
            writer.writerow(row)
    return path
