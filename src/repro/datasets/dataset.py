"""The :class:`SpatialDataset` container.

A spatial dataset bundles, for every individual record:

* the socio-economic feature matrix (columns described by a
  :class:`~repro.datasets.schema.DatasetSchema`),
* the continuous map coordinates and the enclosing base-grid cell,
* the current *neighborhood id* — the spatial-group feature the paper's
  pipeline repeatedly rewrites as the map is re-districted.

The container is immutable except for the neighborhood assignment, which is
replaced (never mutated in place) by :meth:`with_neighborhoods`.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence, Tuple

import numpy as np

from ..exceptions import DatasetError
from ..spatial.grid import Grid
from ..spatial.partition import Partition
from .schema import DatasetSchema


class SpatialDataset:
    """Feature matrix plus spatial attributes for a set of individuals.

    Parameters
    ----------
    schema:
        Column description of ``features``.
    features:
        ``(n_records, n_features)`` float matrix, columns ordered as in
        ``schema``.
    xs, ys:
        Continuous map coordinates of every record.
    grid:
        Base grid; record cells are derived from the coordinates.
    neighborhoods:
        Optional initial neighborhood id per record; defaults to all zeros
        (the single-neighborhood configuration used as the algorithms' seed).
    name:
        Human-readable dataset name (e.g. ``"los_angeles"``).
    """

    def __init__(
        self,
        schema: DatasetSchema,
        features: np.ndarray,
        xs: np.ndarray,
        ys: np.ndarray,
        grid: Grid,
        neighborhoods: Optional[np.ndarray] = None,
        name: str = "unnamed",
    ) -> None:
        features = np.asarray(features, dtype=float)
        xs = np.asarray(xs, dtype=float)
        ys = np.asarray(ys, dtype=float)
        if features.ndim != 2:
            raise DatasetError(f"features must be 2-D, got shape {features.shape}")
        if features.shape[1] != len(schema):
            raise DatasetError(
                f"features have {features.shape[1]} columns but schema describes {len(schema)}"
            )
        n_records = features.shape[0]
        if xs.shape != (n_records,) or ys.shape != (n_records,):
            raise DatasetError("coordinate arrays must be 1-D and match the record count")
        self._schema = schema
        self._features = features
        self._xs = xs
        self._ys = ys
        self._grid = grid
        self._name = name
        rows, cols = grid.locate_many(xs, ys)
        self._cell_rows = rows
        self._cell_cols = cols
        if neighborhoods is None:
            neighborhoods = np.zeros(n_records, dtype=int)
        neighborhoods = np.asarray(neighborhoods, dtype=int)
        if neighborhoods.shape != (n_records,):
            raise DatasetError("neighborhoods must be a 1-D array matching the record count")
        self._neighborhoods = neighborhoods

    # -- basic accessors ----------------------------------------------------------

    @property
    def name(self) -> str:
        return self._name

    @property
    def schema(self) -> DatasetSchema:
        return self._schema

    @property
    def grid(self) -> Grid:
        return self._grid

    @property
    def n_records(self) -> int:
        return self._features.shape[0]

    @property
    def features(self) -> np.ndarray:
        """The raw feature matrix (read-only view)."""
        view = self._features.view()
        view.flags.writeable = False
        return view

    @property
    def xs(self) -> np.ndarray:
        return self._xs

    @property
    def ys(self) -> np.ndarray:
        return self._ys

    @property
    def cell_rows(self) -> np.ndarray:
        """Base-grid row of each record."""
        return self._cell_rows

    @property
    def cell_cols(self) -> np.ndarray:
        """Base-grid column of each record."""
        return self._cell_cols

    @property
    def neighborhoods(self) -> np.ndarray:
        """Current neighborhood id of each record."""
        return self._neighborhoods

    @property
    def n_neighborhoods(self) -> int:
        return int(self._neighborhoods.max(initial=0)) + 1 if self.n_records else 0

    def __len__(self) -> int:
        return self.n_records

    def __repr__(self) -> str:
        return (
            f"SpatialDataset(name={self._name!r}, records={self.n_records}, "
            f"features={len(self._schema)}, neighborhoods={self.n_neighborhoods})"
        )

    # -- column access --------------------------------------------------------------

    def column(self, name: str) -> np.ndarray:
        """The values of feature column ``name``."""
        return self._features[:, self._schema.index_of(name)].copy()

    def training_matrix(self, include_neighborhood: bool = True) -> Tuple[np.ndarray, Tuple[str, ...]]:
        """Feature matrix used for training.

        Outcome columns are dropped; when ``include_neighborhood`` is true the
        neighborhood id is appended as the final (categorical) column, exactly
        as the paper treats location as an ordinary feature.

        Returns
        -------
        (matrix, column_names)
        """
        training_names = self._schema.training_names
        indices = [self._schema.index_of(name) for name in training_names]
        matrix = self._features[:, indices]
        names = tuple(training_names)
        if include_neighborhood:
            matrix = np.column_stack([matrix, self._neighborhoods.astype(float)])
            names = names + ("neighborhood",)
        return matrix, names

    # -- neighborhood rewriting --------------------------------------------------------

    def with_neighborhoods(self, neighborhoods: Sequence[int]) -> "SpatialDataset":
        """Return a copy of the dataset with a new neighborhood assignment."""
        return SpatialDataset(
            schema=self._schema,
            features=self._features,
            xs=self._xs,
            ys=self._ys,
            grid=self._grid,
            neighborhoods=np.asarray(neighborhoods, dtype=int),
            name=self._name,
        )

    def with_partition(self, partition: Partition) -> "SpatialDataset":
        """Assign neighborhoods from ``partition`` (one id per region)."""
        if partition.grid != self._grid:
            raise DatasetError("partition grid does not match the dataset grid")
        assignment = partition.assign(self._cell_rows, self._cell_cols)
        if np.any(assignment < 0):
            raise DatasetError("partition does not cover every record's grid cell")
        return self.with_neighborhoods(assignment)

    def subset(self, indices: Sequence[int]) -> "SpatialDataset":
        """Row-subset of the dataset (used for train/test splits)."""
        indices = np.asarray(indices, dtype=int)
        return SpatialDataset(
            schema=self._schema,
            features=self._features[indices],
            xs=self._xs[indices],
            ys=self._ys[indices],
            grid=self._grid,
            neighborhoods=self._neighborhoods[indices],
            name=self._name,
        )

    # -- summaries ---------------------------------------------------------------------

    def describe(self) -> Dict[str, Dict[str, float]]:
        """Per-feature summary statistics (min / mean / max / std)."""
        summary: Dict[str, Dict[str, float]] = {}
        for name in self._schema.names:
            values = self.column(name)
            summary[name] = {
                "min": float(values.min()),
                "mean": float(values.mean()),
                "max": float(values.max()),
                "std": float(values.std()),
            }
        return summary

    def neighborhood_sizes(self) -> np.ndarray:
        """Record counts per neighborhood id (length = max id + 1)."""
        if self.n_records == 0:
            return np.zeros(0, dtype=int)
        sizes = np.zeros(self.n_neighborhoods, dtype=int)
        np.add.at(sizes, self._neighborhoods, 1)
        return sizes
