"""Coordinate-file I/O for the serving layer's batch queries.

The ``query`` CLI verb reads the points to locate from a CSV file with
``x`` and ``y`` columns (extra columns are ignored; a header row is
required so column order never matters) and writes one assignment row per
input point.
"""

from __future__ import annotations

import csv
from pathlib import Path
from typing import Tuple

import numpy as np

from ..exceptions import DatasetError


def read_points_csv(path: str | Path) -> Tuple[np.ndarray, np.ndarray]:
    """Read ``(xs, ys)`` coordinate arrays from a CSV file with x/y columns."""
    path = Path(path)
    if not path.is_file():
        raise DatasetError(f"points file {path} does not exist")
    with path.open(newline="", encoding="utf-8") as handle:
        reader = csv.DictReader(handle)
        fields = [name.strip().lower() for name in (reader.fieldnames or [])]
        if "x" not in fields or "y" not in fields:
            raise DatasetError(
                f"points file {path} needs 'x' and 'y' columns, found {reader.fieldnames}"
            )
        xs: list[float] = []
        ys: list[float] = []
        for line_number, row in enumerate(reader, start=2):
            normalised = {key.strip().lower(): value for key, value in row.items() if key}
            try:
                xs.append(float(normalised["x"]))
                ys.append(float(normalised["y"]))
            except (KeyError, TypeError, ValueError) as exc:
                raise DatasetError(
                    f"points file {path} line {line_number}: bad coordinate ({exc})"
                ) from exc
    return np.asarray(xs, dtype=float), np.asarray(ys, dtype=float)


def write_points_csv(path: str | Path, xs: np.ndarray, ys: np.ndarray) -> Path:
    """Write coordinate arrays as an x/y CSV (the inverse of :func:`read_points_csv`)."""
    xs = np.asarray(xs, dtype=float)
    ys = np.asarray(ys, dtype=float)
    if xs.shape != ys.shape:
        raise DatasetError("xs and ys must have the same shape")
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w", newline="", encoding="utf-8") as handle:
        writer = csv.writer(handle)
        writer.writerow(["x", "y"])
        writer.writerows(zip(xs.tolist(), ys.tolist()))
    return path
