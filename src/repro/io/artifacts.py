"""Persistent partition artifacts: save a built partition, serve it later.

A partition is expensive to build (model training + tree construction) and
cheap to serve (a dense label grid plus region extents), so the two halves
should not share a process lifetime.  This module turns a built
:class:`~repro.spatial.partition.Partition` into an on-disk **artifact
bundle** — a directory with

* ``manifest.json`` — format version, grid geometry, region count, and
  free-form provenance (builder configuration, engine, dataset identity);
* ``arrays.npz`` — the dense cell->region ``label_grid`` and the
  ``n_regions x 4`` region-extent table.

and loads it back without retraining.  Loading re-derives the label grid
from the region extents and compares it against the stored one, so a
corrupted or hand-edited bundle fails loudly instead of serving wrong
neighborhoods.

Format version policy
---------------------
``FORMAT_VERSION`` is a single integer, bumped on any change a previous
reader could misinterpret (new required key, changed array layout).  A
reader accepts exactly the versions in ``SUPPORTED_FORMAT_VERSIONS`` and
raises :class:`~repro.exceptions.PartitionError` for anything else —
artifacts are small and rebuilding them is cheap, so there is no silent
best-effort migration path.
"""

from __future__ import annotations

import json
import zipfile
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, Mapping, Tuple

import numpy as np

from ..exceptions import PartitionError
from ..spatial.geometry import BoundingBox
from ..spatial.grid import Grid
from ..spatial.partition import Partition
from ..spatial.region import GridRegion

#: Current artifact format version (see the module docstring for the policy).
FORMAT_VERSION = 1

#: Format versions this reader understands.
SUPPORTED_FORMAT_VERSIONS: Tuple[int, ...] = (1,)

#: File names inside an artifact bundle directory.
MANIFEST_NAME = "manifest.json"
ARRAYS_NAME = "arrays.npz"

#: Optional raw ``.npy`` sidecar of the label grid, for mmap-backed loads.
#: ``arrays.npz`` is a *compressed* zip and cannot be memory-mapped; the
#: sidecar is the same ``label_grid`` array in plain ``.npy`` layout, so
#: :func:`open_grid_mmap` can hand out a zero-copy read-only view and N
#: processes mapping the same bundle share one page-cache copy.
LABELS_SIDECAR_NAME = "label_grid.npy"


@dataclass(frozen=True)
class PartitionArtifact:
    """A partition loaded from (or about to be written to) a bundle.

    Attributes
    ----------
    partition:
        The reconstructed partition, identical to the one that was saved.
    provenance:
        Free-form metadata recorded at save time (builder method, height,
        split engine, dataset identity, ...).  Never interpreted by the
        loader; surfaced so serving layers can report what they serve.
    format_version:
        The bundle's on-disk format version.
    """

    partition: Partition
    provenance: Dict[str, Any] = field(default_factory=dict)
    format_version: int = FORMAT_VERSION

    @property
    def n_regions(self) -> int:
        return len(self.partition)

    @property
    def spec_dict(self) -> Dict[str, Any] | None:
        """The embedded run spec as a plain dict, if the bundle has one.

        Bundles written through :func:`repro.api.build_partition` carry the
        originating :class:`~repro.api.specs.RunSpec` under the ``"spec"``
        provenance key; older bundles return ``None``.  The artifact layer
        never interprets it — validation belongs to ``repro.api``.
        """
        spec = self.provenance.get("spec")
        return dict(spec) if isinstance(spec, dict) else None


def _region_extents(partition: Partition) -> np.ndarray:
    """``n_regions x 4`` table of (row_start, row_stop, col_start, col_stop)."""
    return np.array(
        [
            (region.row_start, region.row_stop, region.col_start, region.col_stop)
            for region in partition.regions
        ],
        dtype=np.int64,
    )


def save_partition_artifact(
    partition: Partition,
    path: str | Path,
    provenance: Mapping[str, Any] | None = None,
    spec: Any = None,
) -> Path:
    """Write ``partition`` as an artifact bundle at directory ``path``.

    The directory is created (parents included) and its ``manifest.json``
    and ``arrays.npz`` members are overwritten if present.  Returns the
    bundle directory path.

    ``spec`` optionally embeds the originating run description under the
    ``"spec"`` provenance key: anything with a ``to_dict()`` method (a
    :class:`~repro.api.specs.RunSpec`) or a plain mapping.  Serving layers
    re-validate it on load; this module stays agnostic of its schema.
    """
    path = Path(path)
    path.mkdir(parents=True, exist_ok=True)
    provenance = dict(provenance or {})
    if spec is not None:
        provenance.setdefault(
            "spec", spec.to_dict() if hasattr(spec, "to_dict") else dict(spec)
        )
    grid = partition.grid
    bounds = grid.bounds
    manifest = {
        "format_version": FORMAT_VERSION,
        "grid": {
            "rows": grid.rows,
            "cols": grid.cols,
            "bounds": [bounds.min_x, bounds.min_y, bounds.max_x, bounds.max_y],
        },
        "n_regions": len(partition),
        "is_complete": partition.is_complete,
        "provenance": provenance,
    }
    (path / MANIFEST_NAME).write_text(
        json.dumps(manifest, indent=2, sort_keys=True), encoding="utf-8"
    )
    with open(path / ARRAYS_NAME, "wb") as handle:
        np.savez_compressed(
            handle,
            label_grid=np.asarray(partition.label_grid, dtype=np.int64),
            region_extents=_region_extents(partition),
        )
    return path


def bundle_fingerprint(path: str | Path) -> Tuple[int, int, int, int]:
    """Cheap change-detection stamp of a bundle's two member files.

    Returns ``(manifest mtime_ns, manifest size, arrays mtime_ns, arrays
    size)`` — enough to notice a rebuilt artifact at the same path without
    re-reading either file.  The serving cache compares this stamp on every
    hit so a stale in-memory server is reloaded instead of silently served.
    Raises :class:`~repro.exceptions.PartitionError` when the bundle's
    members are missing (the same condition :func:`load_partition_artifact`
    reports).
    """
    path = Path(path)
    try:
        manifest = (path / MANIFEST_NAME).stat()
        arrays = (path / ARRAYS_NAME).stat()
    except OSError as exc:
        raise PartitionError(
            f"{path} is not a partition artifact bundle "
            f"(expected {MANIFEST_NAME} and {ARRAYS_NAME})"
        ) from exc
    return (manifest.st_mtime_ns, manifest.st_size, arrays.st_mtime_ns, arrays.st_size)


def ensure_grid_sidecar(path: str | Path) -> Path:
    """Materialise the bundle's mmap sidecar (``label_grid.npy``), idempotent.

    ``arrays.npz`` is deflate-compressed, so loading it always inflates a
    private copy per process; the sidecar stores the label grid in raw
    ``.npy`` layout, which :func:`open_grid_mmap` can map read-only —
    many processes then share one page-cache copy, the same
    shared-readers economics :mod:`repro.serving.workers` gets from
    ``multiprocessing.shared_memory``, but durable and demand-paged.

    A sidecar at least as new as ``arrays.npz`` is trusted and returned
    untouched; a stale one (the bundle was re-saved in place) is
    rewritten.  The write lands in a temporary file first and is renamed
    into place, so a reader never maps a half-written sidecar.  Returns
    the sidecar path.
    """
    path = Path(path)
    arrays_path = path / ARRAYS_NAME
    sidecar = path / LABELS_SIDECAR_NAME
    try:
        arrays_mtime = arrays_path.stat().st_mtime_ns
    except OSError as exc:
        raise PartitionError(
            f"{path} is not a partition artifact bundle "
            f"(expected {MANIFEST_NAME} and {ARRAYS_NAME})"
        ) from exc
    try:
        if sidecar.stat().st_mtime_ns >= arrays_mtime:
            return sidecar
    except OSError:
        pass  # no sidecar yet
    artifact = load_partition_artifact(path)
    staging = sidecar.with_name(sidecar.name + ".tmp")
    with open(staging, "wb") as handle:
        np.save(
            handle,
            np.ascontiguousarray(artifact.partition.label_grid, dtype=np.int64),
        )
    staging.replace(sidecar)
    return sidecar


def open_grid_mmap(path: str | Path) -> np.ndarray:
    """A read-only mmap-backed view of the bundle's dense label grid.

    Creates (or refreshes) the ``label_grid.npy`` sidecar via
    :func:`ensure_grid_sidecar`, then maps it with ``mmap_mode="r"`` —
    no bytes are read until touched, and pages are shared between every
    process mapping the same bundle.  The view is int64 and never
    writable; callers that need to mutate must copy explicitly.
    """
    # returns: int64[r, c]
    sidecar = ensure_grid_sidecar(path)
    try:
        labels = np.load(sidecar, mmap_mode="r")
    except (ValueError, OSError) as exc:
        raise PartitionError(
            f"artifact sidecar {sidecar} is unreadable: {exc}"
        ) from exc
    if labels.dtype != np.int64 or labels.ndim != 2:
        raise PartitionError(
            f"artifact sidecar {sidecar} holds {labels.dtype}"
            f"[{'x'.join(map(str, labels.shape))}], expected a 2-D int64 "
            "label grid; delete it to let ensure_grid_sidecar rebuild it"
        )
    return labels


def load_partition_artifact(path: str | Path) -> PartitionArtifact:
    """Load the artifact bundle at ``path`` back into a :class:`PartitionArtifact`.

    Raises :class:`~repro.exceptions.PartitionError` when the bundle is
    missing members, declares an unsupported format version, or its stored
    label grid disagrees with the grid re-derived from the region extents
    (a corruption check — the two encode the same partition redundantly).
    """
    path = Path(path)
    manifest_path = path / MANIFEST_NAME
    arrays_path = path / ARRAYS_NAME
    if not manifest_path.is_file() or not arrays_path.is_file():
        raise PartitionError(
            f"{path} is not a partition artifact bundle "
            f"(expected {MANIFEST_NAME} and {ARRAYS_NAME})"
        )
    try:
        manifest = json.loads(manifest_path.read_text(encoding="utf-8"))
    except json.JSONDecodeError as exc:
        raise PartitionError(f"malformed artifact manifest {manifest_path}: {exc}") from exc

    version = manifest.get("format_version")
    if version not in SUPPORTED_FORMAT_VERSIONS:
        raise PartitionError(
            f"artifact {path} has format version {version!r}; "
            f"this reader supports {SUPPORTED_FORMAT_VERSIONS}"
        )
    try:
        grid_info = manifest["grid"]
        box = grid_info["bounds"]
        grid = Grid(
            int(grid_info["rows"]),
            int(grid_info["cols"]),
            BoundingBox(float(box[0]), float(box[1]), float(box[2]), float(box[3])),
        )
        n_regions = int(manifest["n_regions"])
        is_complete = bool(manifest.get("is_complete", True))
        provenance = dict(manifest.get("provenance", {}))
    except (KeyError, TypeError, IndexError, ValueError) as exc:
        raise PartitionError(f"malformed artifact manifest {manifest_path}: {exc}") from exc

    try:
        with np.load(arrays_path) as arrays:
            try:
                label_grid = arrays["label_grid"]
                extents = arrays["region_extents"]
            except KeyError as exc:
                raise PartitionError(f"artifact arrays {arrays_path} missing {exc}") from exc
    except PartitionError:
        raise
    except (ValueError, zipfile.BadZipFile, OSError) as exc:
        # Truncated or mid-overwrite npz: np.load raises ValueError or
        # BadZipFile on corrupt payloads, OSError on unreadable files.
        raise PartitionError(f"artifact arrays {arrays_path} are unreadable: {exc}") from exc

    if extents.shape != (n_regions, 4):
        raise PartitionError(
            f"artifact {path}: region extents of shape {extents.shape} do not match "
            f"the manifest's {n_regions} regions"
        )
    regions = [
        GridRegion(grid, int(r0), int(r1), int(c0), int(c1)) for r0, r1, c0, c1 in extents
    ]
    partition = Partition(grid, regions, require_complete=is_complete)
    if label_grid.shape != grid.shape or not np.array_equal(
        np.asarray(partition.label_grid), np.asarray(label_grid, dtype=np.int64)
    ):
        raise PartitionError(
            f"artifact {path} is corrupt: stored label grid disagrees with the "
            "grid derived from its region extents"
        )
    return PartitionArtifact(partition, provenance=provenance, format_version=int(version))
