"""Export partitions (JSON / GeoJSON) and experiment rows (CSV / JSON)."""

from __future__ import annotations

import csv
import io
import json
from pathlib import Path
from typing import Any, Dict, Mapping, Sequence

from ..exceptions import PartitionError
from ..spatial.geometry import BoundingBox
from ..spatial.grid import Grid
from ..spatial.partition import Partition
from ..spatial.region import GridRegion


def partition_to_dict(partition: Partition) -> Dict[str, Any]:
    """Serialise a partition to a plain dictionary (JSON-compatible)."""
    grid = partition.grid
    return {
        "grid": {
            "rows": grid.rows,
            "cols": grid.cols,
            "bounds": [grid.bounds.min_x, grid.bounds.min_y, grid.bounds.max_x, grid.bounds.max_y],
        },
        "regions": [
            {
                "row_start": int(region.row_start),
                "row_stop": int(region.row_stop),
                "col_start": int(region.col_start),
                "col_stop": int(region.col_stop),
            }
            for region in partition.regions
        ],
    }


def partition_from_dict(payload: Mapping[str, Any]) -> Partition:
    """Inverse of :func:`partition_to_dict`."""
    try:
        grid_info = payload["grid"]
        bounds = grid_info["bounds"]
        grid = Grid(
            int(grid_info["rows"]),
            int(grid_info["cols"]),
            BoundingBox(float(bounds[0]), float(bounds[1]), float(bounds[2]), float(bounds[3])),
        )
        regions = [
            GridRegion(
                grid,
                int(region["row_start"]),
                int(region["row_stop"]),
                int(region["col_start"]),
                int(region["col_stop"]),
            )
            for region in payload["regions"]
        ]
    except (KeyError, TypeError, IndexError) as exc:
        raise PartitionError(f"malformed partition payload: {exc}") from exc
    return Partition(grid, regions)


def partition_to_geojson(
    partition: Partition, properties: Sequence[Mapping[str, Any]] | None = None
) -> Dict[str, Any]:
    """Serialise a partition as a GeoJSON FeatureCollection of polygons.

    Parameters
    ----------
    partition:
        The neighborhoods to export.
    properties:
        Optional per-region property dictionaries (e.g. ENCE, population),
        aligned with ``partition.regions``.
    """
    if properties is not None and len(properties) != len(partition):
        raise PartitionError(
            f"expected {len(partition)} property dicts, got {len(properties)}"
        )
    features = []
    for index, region in enumerate(partition.regions):
        bounds = region.bounds
        ring = [
            [bounds.min_x, bounds.min_y],
            [bounds.max_x, bounds.min_y],
            [bounds.max_x, bounds.max_y],
            [bounds.min_x, bounds.max_y],
            [bounds.min_x, bounds.min_y],
        ]
        feature_properties: Dict[str, Any] = {"neighborhood": index}
        if properties is not None:
            feature_properties.update(dict(properties[index]))
        features.append(
            {
                "type": "Feature",
                "geometry": {"type": "Polygon", "coordinates": [ring]},
                "properties": feature_properties,
            }
        )
    return {"type": "FeatureCollection", "features": features}


def rows_to_csv(rows: Sequence[Mapping[str, Any]]) -> str:
    """Render table rows (list of dicts) as CSV text."""
    if not rows:
        return ""
    columns: list[str] = []
    for row in rows:
        for key in row:
            if key not in columns:
                columns.append(key)
    buffer = io.StringIO()
    writer = csv.DictWriter(buffer, fieldnames=columns)
    writer.writeheader()
    for row in rows:
        writer.writerow({key: row.get(key, "") for key in columns})
    return buffer.getvalue()


def save_rows_csv(rows: Sequence[Mapping[str, Any]], path: str | Path) -> Path:
    """Write table rows to ``path`` as CSV and return the path."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(rows_to_csv(rows), encoding="utf-8")
    return path


def save_json(payload: Any, path: str | Path, indent: int = 2) -> Path:
    """Write any JSON-serialisable payload to ``path`` and return the path."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(payload, indent=indent, sort_keys=True), encoding="utf-8")
    return path
