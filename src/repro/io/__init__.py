"""Serialisation helpers: export partitions and experiment results.

A re-districted map is only useful if it can leave the process: this package
exports partitions as GeoJSON-like feature collections (so they can be drawn
on any map front-end), round-trips partitions through plain JSON, writes
experiment rows as CSV/JSON for downstream analysis, and persists built
partitions as versioned artifact bundles (``.npz`` + JSON manifest) that the
serving layer loads back without retraining.
"""

from .artifacts import (
    FORMAT_VERSION,
    SUPPORTED_FORMAT_VERSIONS,
    PartitionArtifact,
    ensure_grid_sidecar,
    load_partition_artifact,
    open_grid_mmap,
    save_partition_artifact,
)
from .export import (
    partition_from_dict,
    partition_to_dict,
    partition_to_geojson,
    rows_to_csv,
    save_json,
    save_rows_csv,
)
from .points import read_points_csv, write_points_csv

__all__ = [
    "partition_to_dict",
    "partition_from_dict",
    "partition_to_geojson",
    "rows_to_csv",
    "save_rows_csv",
    "save_json",
    "FORMAT_VERSION",
    "SUPPORTED_FORMAT_VERSIONS",
    "PartitionArtifact",
    "save_partition_artifact",
    "load_partition_artifact",
    "ensure_grid_sidecar",
    "open_grid_mmap",
    "read_points_csv",
    "write_points_csv",
]
