"""Serialisation helpers: export partitions and experiment results.

A re-districted map is only useful if it can leave the process: this package
exports partitions as GeoJSON-like feature collections (so they can be drawn
on any map front-end), round-trips partitions through plain JSON, and writes
experiment rows as CSV/JSON for downstream analysis.
"""

from .export import (
    partition_from_dict,
    partition_to_dict,
    partition_to_geojson,
    rows_to_csv,
    save_json,
    save_rows_csv,
)

__all__ = [
    "partition_to_dict",
    "partition_from_dict",
    "partition_to_geojson",
    "rows_to_csv",
    "save_rows_csv",
    "save_json",
]
