"""Seeded random-number helpers.

Every stochastic component of the library (dataset synthesis, model
initialisation, permutation importance, splitting) accepts either an integer
seed or an already-constructed :class:`numpy.random.Generator`.  This module
centralises the conversion so behaviour is reproducible bit-for-bit.
"""

from __future__ import annotations

from typing import Optional, Union

import numpy as np

SeedLike = Union[int, np.random.Generator, None]

#: Default seed used throughout the experiments when none is supplied.
DEFAULT_SEED = 20240229


def as_generator(seed: SeedLike = None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for ``seed``.

    Parameters
    ----------
    seed:
        ``None`` (use :data:`DEFAULT_SEED`), an integer seed, or an existing
        generator (returned unchanged so callers can share a stream).
    """
    if seed is None:
        return np.random.default_rng(DEFAULT_SEED)
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(int(seed))


def spawn(seed: SeedLike, index: int) -> np.random.Generator:
    """Derive an independent child generator from ``seed`` and ``index``.

    Used when one experiment needs several decorrelated streams (for example
    one per city or per classifier) that must not depend on the order in
    which they are consumed.
    """
    if index < 0:
        raise ValueError(f"index must be non-negative, got {index}")
    base = DEFAULT_SEED if seed is None else seed
    if isinstance(base, np.random.Generator):
        # Sample a stable integer from the generator's bit stream.
        base = int(base.integers(0, 2**31 - 1))
    return np.random.default_rng(np.random.SeedSequence(entropy=int(base), spawn_key=(index,)))


def check_probability(value: float, name: str = "probability") -> float:
    """Validate that ``value`` lies in [0, 1] and return it as ``float``."""
    value = float(value)
    if not 0.0 <= value <= 1.0:
        raise ValueError(f"{name} must be in [0, 1], got {value}")
    return value
