"""The SplitNeighborhood procedure (Algorithm 2 of the paper).

Given a rectangular region of the base grid, per-record residuals
``s_u - y_u`` (confidence score minus label), and a split axis, the procedure
evaluates every possible split index ``k`` along the axis, scores it with a
:class:`~repro.core.objective.SplitScorer`, and returns the two sub-regions
of the best split.

The per-line aggregates that drive the scoring come from a
:class:`~repro.core.split_engine.SplitEngine`.  Tree builders construct one
engine per build (the prefix-sum engine amortises all record scanning into a
single binning pass) and pass it down the recursion; callers that only have
raw record arrays can still invoke the procedure directly and a record-scan
engine is created on the fly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..exceptions import SplitError
from ..spatial.region import GridRegion
from .objective import SplitScorer
from .split_engine import RecordScanEngine, SplitEngine


@dataclass(frozen=True)
class SplitDecision:
    """Outcome of evaluating one region split."""

    region: GridRegion
    axis: int
    index: int
    score: float
    left: GridRegion
    right: GridRegion
    left_count: int
    right_count: int


def _resolve_engine(
    region: GridRegion,
    cell_rows: Optional[np.ndarray],
    cell_cols: Optional[np.ndarray],
    residuals: Optional[np.ndarray],
    engine: Optional[SplitEngine],
) -> SplitEngine:
    """Use the caller's engine, or wrap raw record arrays in a record scan."""
    if engine is not None:
        return engine
    if cell_rows is None or cell_cols is None or residuals is None:
        raise SplitError(
            "either a split engine or (cell_rows, cell_cols, residuals) is required"
        )
    return RecordScanEngine(region.grid, cell_rows, cell_cols, residuals)


def split_neighborhood(
    region: GridRegion,
    cell_rows: Optional[np.ndarray] = None,
    cell_cols: Optional[np.ndarray] = None,
    residuals: Optional[np.ndarray] = None,
    axis: int = 0,
    scorer: Optional[SplitScorer] = None,
    engine: Optional[SplitEngine] = None,
) -> Optional[SplitDecision]:
    """Find the best split of ``region`` along ``axis`` (Algorithm 2).

    Parameters
    ----------
    region:
        The neighborhood to split.
    cell_rows, cell_cols:
        Grid-cell coordinates of **all** dataset records (records outside the
        region are ignored).  May be omitted when ``engine`` is given.
    residuals:
        Per-record residuals ``s_u - y_u`` aligned with the coordinate arrays.
        May be omitted when ``engine`` is given.
    axis:
        0 to split on rows, 1 to split on columns (the paper's transpose).
    scorer:
        Split objective; defaults to the paper's balance objective (Eq. 9).
    engine:
        Pre-built :class:`~repro.core.split_engine.SplitEngine` carrying the
        record statistics; tree builders pass one engine down the whole
        recursion so record scanning happens at most once per build.

    Returns
    -------
    SplitDecision or None
        ``None`` when the region cannot be split along ``axis`` (it spans a
        single row/column).  A region whose candidate lines hold no records
        at all is split at its geometric centre with score 0 — every
        candidate is equally (vacuously) fair, and the central cut avoids
        degenerate slivers while keeping the domain fully covered.  For
        non-empty regions, ties between equally-scored candidates are broken
        toward the most central split index for the same reason.
    """
    engine = _resolve_engine(region, cell_rows, cell_cols, residuals, engine)
    if axis not in (0, 1):
        raise SplitError(f"axis must be 0 or 1, got {axis}")
    if not region.can_split(axis):
        return None
    scorer = scorer or SplitScorer()

    line_residuals, line_counts = engine.line_sums(region, axis)
    n_lines = line_residuals.shape[0]
    total_count = int(line_counts.sum())

    if total_count == 0:
        # Empty region: no objective can distinguish the candidates, so cut
        # at the geometric centre explicitly instead of running the scorer.
        index = region.center_split_index(axis)
        left, right = region.split(axis, index)
        return SplitDecision(
            region=region,
            axis=axis,
            index=index,
            score=0.0,
            left=left,
            right=right,
            left_count=0,
            right_count=0,
        )

    prefix_residuals = line_residuals.cumsum()[:-1]
    prefix_counts = line_counts.cumsum()[:-1]
    total_residual = float(line_residuals.sum())

    scores = scorer.score_prefixes(prefix_residuals, prefix_counts, total_residual, total_count)

    best_score = float(scores.min())
    # Every score is >= the minimum, so the tolerance band |s - best| <= atol
    # reduces to a one-sided threshold (cheaper than np.isclose).
    candidates = np.flatnonzero(scores <= best_score + 1e-12)
    if candidates.size == 0:
        # Only possible for a scorer that returns non-finite values.
        raise SplitError(
            f"objective {scorer.name!r} produced no scoreable candidate for {region}"
        )
    center = (n_lines - 1) / 2.0 - 0.5
    best_offset = int(candidates[np.abs(candidates - center).argmin()])
    best_index = best_offset + 1  # split keeps lines [0, best_index) on the left

    left, right = region.split(axis, best_index)
    left_count = int(prefix_counts[best_offset])
    return SplitDecision(
        region=region,
        axis=axis,
        index=best_index,
        score=best_score,
        left=left,
        right=right,
        left_count=left_count,
        right_count=total_count - left_count,
    )


def best_axis_split(
    region: GridRegion,
    cell_rows: Optional[np.ndarray] = None,
    cell_cols: Optional[np.ndarray] = None,
    residuals: Optional[np.ndarray] = None,
    preferred_axis: int = 0,
    scorer: Optional[SplitScorer] = None,
    engine: Optional[SplitEngine] = None,
) -> Optional[SplitDecision]:
    """Split along ``preferred_axis`` if possible, otherwise along the other axis.

    Mirrors the axis-alternation of the KD-tree while guaranteeing progress on
    regions that have shrunk to a single row or column.  Regions whose
    candidate lines are all empty of records are handled explicitly by
    :func:`split_neighborhood` (a central geometric cut), so the fallback
    never depends on a downstream :class:`~repro.exceptions.SplitError`.
    """
    engine = _resolve_engine(region, cell_rows, cell_cols, residuals, engine)
    decision = split_neighborhood(
        region, axis=preferred_axis, scorer=scorer, engine=engine
    )
    if decision is not None:
        return decision
    return split_neighborhood(
        region, axis=1 - preferred_axis, scorer=scorer, engine=engine
    )
