"""The SplitNeighborhood procedure (Algorithm 2 of the paper).

Given a rectangular region of the base grid, per-record residuals
``s_u - y_u`` (confidence score minus label), and a split axis, the procedure
evaluates every possible split index ``k`` along the axis, scores it with a
:class:`~repro.core.objective.SplitScorer`, and returns the two sub-regions
of the best split.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from ..exceptions import SplitError
from ..spatial.region import GridRegion
from .objective import SplitScorer


@dataclass(frozen=True)
class SplitDecision:
    """Outcome of evaluating one region split."""

    region: GridRegion
    axis: int
    index: int
    score: float
    left: GridRegion
    right: GridRegion
    left_count: int
    right_count: int


def _line_sums(
    region: GridRegion,
    cell_rows: np.ndarray,
    cell_cols: np.ndarray,
    residuals: np.ndarray,
    axis: int,
) -> Tuple[np.ndarray, np.ndarray]:
    """Per-line residual sums and record counts along ``axis`` inside ``region``.

    Line ``i`` is the ``i``-th row (axis 0) or column (axis 1) of the region.
    """
    mask = region.member_mask(cell_rows, cell_cols)
    if axis == 0:
        coords = cell_rows[mask] - region.row_start
        n_lines = region.n_rows
    else:
        coords = cell_cols[mask] - region.col_start
        n_lines = region.n_cols
    line_residuals = np.zeros(n_lines, dtype=float)
    line_counts = np.zeros(n_lines, dtype=float)
    if coords.size:
        np.add.at(line_residuals, coords, residuals[mask])
        np.add.at(line_counts, coords, 1.0)
    return line_residuals, line_counts


def split_neighborhood(
    region: GridRegion,
    cell_rows: np.ndarray,
    cell_cols: np.ndarray,
    residuals: np.ndarray,
    axis: int,
    scorer: Optional[SplitScorer] = None,
) -> Optional[SplitDecision]:
    """Find the best split of ``region`` along ``axis`` (Algorithm 2).

    Parameters
    ----------
    region:
        The neighborhood to split.
    cell_rows, cell_cols:
        Grid-cell coordinates of **all** dataset records (records outside the
        region are ignored via the region's membership mask).
    residuals:
        Per-record residuals ``s_u - y_u`` aligned with the coordinate arrays.
    axis:
        0 to split on rows, 1 to split on columns (the paper's transpose).
    scorer:
        Split objective; defaults to the paper's balance objective (Eq. 9).

    Returns
    -------
    SplitDecision or None
        ``None`` when the region cannot be split along ``axis`` (it spans a
        single row/column).  Ties between equally-scored candidates are broken
        toward the most central split index, which avoids degenerate slivers
        when several candidate splits are equivalent (for example when a side
        of the region is empty).
    """
    cell_rows = np.asarray(cell_rows, dtype=int)
    cell_cols = np.asarray(cell_cols, dtype=int)
    residuals = np.asarray(residuals, dtype=float)
    if cell_rows.shape != cell_cols.shape or cell_rows.shape != residuals.shape:
        raise SplitError("cell coordinates and residuals must have the same length")
    if axis not in (0, 1):
        raise SplitError(f"axis must be 0 or 1, got {axis}")
    if not region.can_split(axis):
        return None
    scorer = scorer or SplitScorer()

    line_residuals, line_counts = _line_sums(region, cell_rows, cell_cols, residuals, axis)
    n_lines = line_residuals.shape[0]

    prefix_residuals = np.cumsum(line_residuals)[:-1]
    prefix_counts = np.cumsum(line_counts)[:-1]
    total_residual = float(line_residuals.sum())
    total_count = int(line_counts.sum())

    scores = scorer.score_prefixes(prefix_residuals, prefix_counts, total_residual, total_count)

    best_score = float(scores.min())
    candidates = np.flatnonzero(np.isclose(scores, best_score, rtol=0.0, atol=1e-12))
    center = (n_lines - 1) / 2.0 - 0.5
    best_offset = int(candidates[np.argmin(np.abs(candidates - center))])
    best_index = best_offset + 1  # split keeps lines [0, best_index) on the left

    left, right = region.split(axis, best_index)
    left_count = int(prefix_counts[best_offset])
    return SplitDecision(
        region=region,
        axis=axis,
        index=best_index,
        score=best_score,
        left=left,
        right=right,
        left_count=left_count,
        right_count=total_count - left_count,
    )


def best_axis_split(
    region: GridRegion,
    cell_rows: np.ndarray,
    cell_cols: np.ndarray,
    residuals: np.ndarray,
    preferred_axis: int,
    scorer: Optional[SplitScorer] = None,
) -> Optional[SplitDecision]:
    """Split along ``preferred_axis`` if possible, otherwise along the other axis.

    Mirrors the axis-alternation of the KD-tree while guaranteeing progress on
    regions that have shrunk to a single row or column.
    """
    decision = split_neighborhood(
        region, cell_rows, cell_cols, residuals, preferred_axis, scorer
    )
    if decision is not None:
        return decision
    return split_neighborhood(
        region, cell_rows, cell_cols, residuals, 1 - preferred_axis, scorer
    )
