"""Common partitioner interface shared by the fair algorithms and baselines."""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Any, Dict, Optional, Tuple

import numpy as np

from ..datasets.dataset import SpatialDataset
from ..exceptions import TrainingError
from ..ml.base import Classifier
from ..ml.model_selection import ModelFactory
from ..ml.preprocessing import FeaturePipeline
from ..spatial.partition import Partition


@dataclass
class PartitionerOutput:
    """Everything a partitioner produces.

    Attributes
    ----------
    partition:
        The neighborhoods (a complete, non-overlapping cover of the grid).
    sample_weights:
        Optional per-record training weights for the *final* model (used by
        the re-weighting baseline; fair KD-tree variants leave this ``None``).
    metadata:
        Free-form diagnostics: number of model trainings, split scores, etc.
    """

    partition: Partition
    sample_weights: Optional[np.ndarray] = None
    metadata: Dict[str, Any] = field(default_factory=dict)

    @property
    def n_neighborhoods(self) -> int:
        return len(self.partition)


class SpatialPartitioner(ABC):
    """A strategy that redistricts the map into neighborhoods.

    Implementations receive the *training* dataset and its labels; they may
    train internal models (through ``model_factory``) to guide the split
    decisions, but they must not look at test data.
    """

    #: Human-readable method name used in experiment tables.
    name: str = "partitioner"

    @abstractmethod
    def build(
        self,
        dataset: SpatialDataset,
        labels: np.ndarray,
        model_factory: ModelFactory,
    ) -> PartitionerOutput:
        """Construct the neighborhoods for ``dataset``."""

    def __repr__(self) -> str:
        return f"{type(self).__name__}(name={self.name!r})"


def train_scores_on_dataset(
    dataset: SpatialDataset,
    labels: np.ndarray,
    model_factory: ModelFactory,
    sample_weights: Optional[np.ndarray] = None,
) -> Tuple[np.ndarray, Classifier, FeaturePipeline]:
    """Train a fresh model on ``dataset`` and return its confidence scores.

    The neighborhood column currently stored on the dataset is used as the
    categorical location feature, exactly as in Step 1 of Algorithm 1.

    Returns
    -------
    (scores, model, pipeline)
        ``scores`` are the confidence scores for every record of ``dataset``.
    """
    labels = np.asarray(labels, dtype=int)
    if labels.shape != (dataset.n_records,):
        raise TrainingError("labels must match the dataset's record count")
    matrix, names = dataset.training_matrix(include_neighborhood=True)
    pipeline = FeaturePipeline(categorical_index=len(names) - 1)
    transformed = pipeline.fit_transform(matrix)
    model = model_factory()
    model.fit(transformed, labels, sample_weight=sample_weights)
    scores = model.predict_proba(transformed)
    return scores, model, pipeline
