"""Median KD-tree baseline wrapped in the common partitioner interface."""

from __future__ import annotations

import numpy as np

from ..datasets.dataset import SpatialDataset
from ..exceptions import ConfigurationError
from ..ml.model_selection import ModelFactory
from ..registry import register_partitioner
from ..spatial.kdtree import MedianKDTree
from .base import PartitionerOutput, SpatialPartitioner
from .split_engine import DEFAULT_SPLIT_ENGINE, validate_split_engine


@register_partitioner(
    "median_kdtree",
    aliases=("median",),
    summary="classic data-median KD-tree (density only, fairness-blind)",
    paper_ref="baseline",
    accepts_split_engine=True,
    tree_based=True,
    baseline=True,
    paper_order=0,
    servable=True,
)
class MedianKDTreePartitioner(SpatialPartitioner):
    """The standard data-median KD-tree (no fairness awareness).

    This is the paper's primary baseline: the same tree mechanics as the fair
    variants, but split points follow the data median along the alternating
    axis, so the partition adapts to density only.
    """

    name = "median_kdtree"

    def __init__(self, height: int, split_engine: str = DEFAULT_SPLIT_ENGINE) -> None:
        if height < 0:
            raise ConfigurationError(f"height must be non-negative, got {height}")
        self._height = int(height)
        self._split_engine = validate_split_engine(split_engine)

    @property
    def height(self) -> int:
        return self._height

    @property
    def split_engine(self) -> str:
        """Name of the engine used to locate per-node medians."""
        return self._split_engine

    def build(
        self,
        dataset: SpatialDataset,
        labels: np.ndarray,
        model_factory: ModelFactory,
    ) -> PartitionerOutput:
        # Labels and models are intentionally unused: the median KD-tree only
        # looks at the spatial distribution of records.
        tree = MedianKDTree(
            grid=dataset.grid,
            cell_rows=dataset.cell_rows,
            cell_cols=dataset.cell_cols,
            max_height=self._height,
            split_engine=self._split_engine,
        )
        tree.build()
        partition = tree.leaf_partition()
        return PartitionerOutput(
            partition=partition,
            metadata={
                "method": self.name,
                "height": self._height,
                "split_engine": self._split_engine,
                "n_model_trainings": 0,
            },
        )
