"""Split-statistics engines powering the SplitNeighborhood procedure.

Algorithm 2 evaluates every candidate split of a tree node from two
per-line aggregates: the residual sum and the record count of each row
(or column) of the node's region.  How those aggregates are obtained is
independent of the rest of the procedure, so it is factored behind the
:class:`SplitEngine` interface with two implementations:

* :class:`RecordScanEngine` — the original approach: mask the full record
  arrays against the region and bin the members into lines.  Every call
  costs ``O(n_records)``, which dominates tree construction because the
  mask is recomputed for every node and axis.
* :class:`PrefixSumEngine` — bins residuals and counts into dense
  ``(grid.rows, grid.cols)`` arrays **once per tree build** and keeps 2-D
  cumulative-sum tables (the summed-area-table trick also offered as
  :class:`~repro.spatial.region.CumulativeGrid`).  Any region's total is
  four table lookups and any region's per-line sums are one slice
  subtraction, so each candidate-split evaluation costs ``O(side length)``
  regardless of the dataset size.

Both engines feed the identical downstream scoring code.  Record counts are
integers, so count-driven decisions (medians, empty-region detection) are
identical by construction; residual sums are floating-point and the two
engines accumulate them in different orders, so split decisions are
guaranteed bit-identical only when every residual sum is exactly
representable (e.g. dyadic-rational residuals, which the equivalence tests
use) and agree empirically — to the last bit in practice — for arbitrary
residuals.  The record-scan path is kept available (via the
``split_engine`` flag on the partitioners and on
:class:`~repro.config.PartitionerConfig`) for equivalence testing and as a
reference implementation.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Tuple

import numpy as np

from ..config import DEFAULT_SPLIT_ENGINE, SPLIT_ENGINES, validate_split_engine
from ..exceptions import ConfigurationError, SplitError
from ..spatial.grid import Grid, counts_per_cell, sums_per_cell
from ..spatial.region import GridRegion

__all__ = [
    "SPLIT_ENGINES",
    "DEFAULT_SPLIT_ENGINE",
    "SplitEngine",
    "RecordScanEngine",
    "PrefixSumEngine",
    "make_split_engine",
    "validate_split_engine",
]


class SplitEngine(ABC):
    """Provider of per-line split statistics for one tree build.

    An engine is constructed once per tree (it captures the record
    coordinates and residuals of the build) and is then threaded down the
    recursion, answering line-sum queries for every node.
    """

    #: Engine identifier (matches the ``split_engine`` configuration value).
    kind: str = "abstract"

    @abstractmethod
    def line_sums(self, region: GridRegion, axis: int) -> Tuple[np.ndarray, np.ndarray]:
        """Per-line residual sums and record counts of ``region`` along ``axis``.

        Line ``i`` is the ``i``-th row (axis 0) or column (axis 1) of the
        region.  Returns ``(line_residuals, line_counts)`` as float arrays of
        length ``region.n_rows`` / ``region.n_cols``.
        """

    @abstractmethod
    def region_count(self, region: GridRegion) -> int:
        """Number of records whose cells fall inside ``region``."""

    def __repr__(self) -> str:
        return f"{type(self).__name__}(kind={self.kind!r})"

    def _check_grid(self, region: GridRegion) -> None:
        """Reject regions of a different grid (identity fast path)."""
        if region.grid is not self._grid and region.grid != self._grid:
            raise SplitError(
                f"region of grid {region.grid!r} queried against an engine "
                f"built for grid {self._grid!r}"
            )


def _validated_records(
    cell_rows: np.ndarray, cell_cols: np.ndarray, residuals: np.ndarray
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    cell_rows = np.asarray(cell_rows, dtype=int)
    cell_cols = np.asarray(cell_cols, dtype=int)
    residuals = np.asarray(residuals, dtype=float)
    if cell_rows.shape != cell_cols.shape or cell_rows.shape != residuals.shape:
        raise SplitError("cell coordinates and residuals must have the same length")
    return cell_rows, cell_cols, residuals


class RecordScanEngine(SplitEngine):
    """Reference engine: re-scan the record arrays for every query.

    This is the behaviour the paper's pseudo-code implies and what the
    implementation did originally; it is retained behind the
    ``split_engine="record_scan"`` flag so the optimised engine can be
    checked against it.
    """

    kind = "record_scan"

    def __init__(
        self,
        grid: Grid,
        cell_rows: np.ndarray,
        cell_cols: np.ndarray,
        residuals: np.ndarray,
    ) -> None:
        self._grid = grid
        self._cell_rows, self._cell_cols, self._residuals = _validated_records(
            cell_rows, cell_cols, residuals
        )

    def line_sums(self, region: GridRegion, axis: int) -> Tuple[np.ndarray, np.ndarray]:
        self._check_grid(region)
        mask = region.member_mask(self._cell_rows, self._cell_cols)
        if axis == 0:
            coords = self._cell_rows[mask] - region.row_start
            n_lines = region.n_rows
        elif axis == 1:
            coords = self._cell_cols[mask] - region.col_start
            n_lines = region.n_cols
        else:
            raise SplitError(f"axis must be 0 or 1, got {axis}")
        line_residuals = np.zeros(n_lines, dtype=float)
        line_counts = np.zeros(n_lines, dtype=float)
        if coords.size:
            np.add.at(line_residuals, coords, self._residuals[mask])
            np.add.at(line_counts, coords, 1.0)
        return line_residuals, line_counts

    def region_count(self, region: GridRegion) -> int:
        self._check_grid(region)
        return int(region.member_mask(self._cell_rows, self._cell_cols).sum())


class PrefixSumEngine(SplitEngine):
    """Optimised engine backed by 2-D cumulative-sum tables.

    Construction bins every record once (``O(n_records + n_cells)``); every
    subsequent query is independent of the dataset size.  Residual and count
    tables are stacked into one ``(2, rows+1, cols+1)`` array so a node's
    per-line sums for both statistics come out of a single slice
    subtraction.
    """

    kind = "prefix_sum"

    def __init__(
        self,
        grid: Grid,
        cell_rows: np.ndarray,
        cell_cols: np.ndarray,
        residuals: np.ndarray,
    ) -> None:
        cell_rows, cell_cols, residuals = _validated_records(
            cell_rows, cell_cols, residuals
        )
        self._grid = grid
        cells = np.stack(
            [
                sums_per_cell(grid, cell_rows, cell_cols, residuals),
                counts_per_cell(grid, cell_rows, cell_cols).astype(float, copy=False),
            ]
        )
        tables = np.zeros((2, grid.rows + 1, grid.cols + 1), dtype=float)
        tables[:, 1:, 1:] = cells.cumsum(axis=1).cumsum(axis=2)
        self._tables = tables  # array: _tables float64[s, u, v]

    def line_sums(self, region: GridRegion, axis: int) -> Tuple[np.ndarray, np.ndarray]:
        self._check_grid(region)
        t = self._tables
        r0, r1 = region.row_start, region.row_stop
        c0, c1 = region.col_start, region.col_stop
        if axis == 0:
            cumulative = t[:, r0 : r1 + 1, c1] - t[:, r0 : r1 + 1, c0]
        elif axis == 1:
            cumulative = t[:, r1, c0 : c1 + 1] - t[:, r0, c0 : c1 + 1]
        else:
            raise SplitError(f"axis must be 0 or 1, got {axis}")
        lines = cumulative[:, 1:] - cumulative[:, :-1]
        return lines[0], lines[1]

    def region_count(self, region: GridRegion) -> int:
        self._check_grid(region)
        t = self._tables[1]
        r0, r1 = region.row_start, region.row_stop
        c0, c1 = region.col_start, region.col_stop
        # Counts are integers, so the float table is exact (well below 2**53).
        return int(t[r1, c1] - t[r0, c1] - t[r1, c0] + t[r0, c0])


def make_split_engine(
    kind: str,
    grid: Grid,
    cell_rows: np.ndarray,
    cell_cols: np.ndarray,
    residuals: np.ndarray,
) -> SplitEngine:
    """Build the engine named ``kind`` for one tree build.

    Parameters
    ----------
    kind:
        One of :data:`SPLIT_ENGINES` (``"prefix_sum"`` or ``"record_scan"``).
    grid:
        The base grid the tree is built over.
    cell_rows, cell_cols:
        Grid-cell coordinates of every record of the build.
    residuals:
        Per-record residuals ``s_u - y_u`` aligned with the coordinates.
    """
    if kind == "prefix_sum":
        return PrefixSumEngine(grid, cell_rows, cell_cols, residuals)
    if kind == "record_scan":
        return RecordScanEngine(grid, cell_rows, cell_cols, residuals)
    validate_split_engine(kind)
    raise ConfigurationError(f"split engine {kind!r} has no implementation")
