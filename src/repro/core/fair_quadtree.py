"""Fairness-aware quadtree (extension beyond the paper).

The paper's future-work section proposes investigating alternative indexing
structures that completely cover the data domain.  This module contributes a
quadtree variant of the Fair KD-tree: at every node the region is cut into
four quadrants, and the *position* of the cut (a row index and a column index)
is chosen to minimise the same calibration-balance objective as Eq. 9, applied
to the two axes independently.  Like the Fair KD-tree it trains the model once
on the base grid and then splits recursively; unlike it, every split produces
four children, so a height-``h`` fair quadtree is granularity-comparable to a
height-``2h`` fair KD-tree.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from ..datasets.dataset import SpatialDataset
from ..exceptions import ConfigurationError
from ..ml.model_selection import ModelFactory
from ..registry import register_partitioner
from ..spatial.partition import Partition
from ..spatial.region import GridRegion
from .base import PartitionerOutput, SpatialPartitioner, train_scores_on_dataset
from .objective import SplitScorer, make_scorer
from .split import split_neighborhood
from .split_engine import (
    DEFAULT_SPLIT_ENGINE,
    SplitEngine,
    make_split_engine,
    validate_split_engine,
)


@dataclass
class FairQuadNode:
    """A node of the fair quadtree."""

    region: GridRegion
    depth: int
    children: List["FairQuadNode"] = field(default_factory=list)

    @property
    def is_leaf(self) -> bool:
        return not self.children

    def leaves(self) -> List["FairQuadNode"]:
        if self.is_leaf:
            return [self]
        result: List[FairQuadNode] = []
        for child in self.children:
            result.extend(child.leaves())
        return result


@register_partitioner(
    "fair_quadtree",
    summary="four-way fair splits; a depth-d quadtree ~ a height-2d KD-tree",
    paper_ref="future-work extension",
    accepts_split_engine=True,
    accepts_objective=True,
    tree_based=True,
    height_param="depth",
)
class FairQuadTreePartitioner(SpatialPartitioner):
    """Quadtree whose cut point minimises the calibration-balance objective.

    Parameters
    ----------
    depth:
        Number of quadtree levels; at most ``4**depth`` leaves.
    objective:
        Split objective applied independently to the row and column cuts.
    min_records_per_child:
        Optional lower bound on the records in each child; a quadrant split
        producing a smaller child is rejected (the node stays a leaf).
    split_engine:
        ``"prefix_sum"`` (default) or ``"record_scan"``; see
        :mod:`repro.core.split_engine`.
    """

    name = "fair_quadtree"

    def __init__(
        self,
        depth: int,
        objective: str = "balance",
        min_records_per_child: int = 0,
        split_engine: str = DEFAULT_SPLIT_ENGINE,
    ) -> None:
        if depth < 0:
            raise ConfigurationError(f"depth must be non-negative, got {depth}")
        if min_records_per_child < 0:
            raise ConfigurationError("min_records_per_child must be non-negative")
        self._depth = int(depth)
        self._scorer: SplitScorer = make_scorer(objective)
        self._min_records = int(min_records_per_child)
        self._split_engine = validate_split_engine(split_engine)
        self._root: Optional[FairQuadNode] = None

    @property
    def depth(self) -> int:
        return self._depth

    @property
    def split_engine(self) -> str:
        """Name of the engine used to compute split statistics."""
        return self._split_engine

    @property
    def root(self) -> Optional[FairQuadNode]:
        return self._root

    # -- construction ------------------------------------------------------------

    def build(
        self,
        dataset: SpatialDataset,
        labels: np.ndarray,
        model_factory: ModelFactory,
    ) -> PartitionerOutput:
        base = dataset.with_neighborhoods(np.zeros(dataset.n_records, dtype=int))
        scores, _, _ = train_scores_on_dataset(base, labels, model_factory)
        residuals = scores - np.asarray(labels, dtype=float)
        partition = self.build_from_residuals(dataset, residuals)
        return PartitionerOutput(
            partition=partition,
            metadata={
                "method": self.name,
                "depth": self._depth,
                "height": self._depth,
                "objective": self._scorer.name,
                "split_engine": self._split_engine,
                "n_model_trainings": 1,
            },
        )

    def build_from_residuals(
        self, dataset: SpatialDataset, residuals: np.ndarray
    ) -> Partition:
        """Run the recursive quadrant splitting given precomputed residuals."""
        residuals = np.asarray(residuals, dtype=float)
        if residuals.shape != (dataset.n_records,):
            raise ConfigurationError("residuals must match the dataset's record count")
        engine = make_split_engine(
            self._split_engine,
            dataset.grid,
            dataset.cell_rows,
            dataset.cell_cols,
            residuals,
        )
        self._root = self._build_node(GridRegion.full(dataset.grid), engine, depth=0)
        regions = [leaf.region for leaf in self._root.leaves()]
        return Partition(dataset.grid, regions)

    def _build_node(
        self, region: GridRegion, engine: SplitEngine, depth: int
    ) -> FairQuadNode:
        node = FairQuadNode(region=region, depth=depth)
        if depth >= self._depth:
            return node
        children = self._fair_quadrants(region, engine)
        if children is None:
            return node
        if self._min_records:
            counts = [engine.region_count(child) for child in children]
            if min(counts) < self._min_records:
                return node
        node.children = [
            self._build_node(child, engine, depth + 1) for child in children
        ]
        return node

    def _fair_quadrants(
        self, region: GridRegion, engine: SplitEngine
    ) -> Optional[List[GridRegion]]:
        """Cut ``region`` into quadrants at the fairest (row, column) indices.

        Falls back to a two-way split when only one axis is divisible, and to
        ``None`` (leaf) when the region is a single cell.
        """
        row_decision = split_neighborhood(
            region, axis=0, scorer=self._scorer, engine=engine
        )
        col_decision = split_neighborhood(
            region, axis=1, scorer=self._scorer, engine=engine
        )
        if row_decision is None and col_decision is None:
            return None
        if row_decision is None:
            return [col_decision.left, col_decision.right]
        if col_decision is None:
            return [row_decision.left, row_decision.right]

        children: List[GridRegion] = []
        for half in (row_decision.left, row_decision.right):
            sub = split_neighborhood(half, axis=1, scorer=self._scorer, engine=engine)
            if sub is None:
                children.append(half)
            else:
                children.extend([sub.left, sub.right])
        return children
