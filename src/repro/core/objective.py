"""Split objectives used when choosing a fair split point (Equations 9 and 13).

For a candidate split of a region into a left part ``L`` and right part ``R``
the paper's objective is

    z_k = | |L| * |o(L) - e(L)|  -  |R| * |o(R) - e(R)| |

i.e. the absolute difference of the two sides' *cardinality-weighted*
miscalibration.  Because ``|L| * |o(L) - e(L)| = |sum_{u in L} (y_u - s_u)|``,
each side's value reduces to the absolute sum of per-record residuals
``s_u - y_u``, which is what the implementation works with.

Alternative objectives are provided for the ablation study promised in the
paper's future-work section ("custom split metrics"):

* ``balance`` — the paper's Eq. 9 (minimise the imbalance of side values);
* ``total`` — minimise the *sum* of side values (greedy total miscalibration);
* ``count_balance`` — balance record counts (a data-median surrogate used to
  sanity-check that the fairness gain really comes from the residuals).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Tuple

import numpy as np

from ..exceptions import ConfigurationError

SideValueFn = Callable[[float, int], float]
CombineFn = Callable[[float, float], float]


@dataclass(frozen=True)
class SplitScorer:
    """Scores candidate splits from per-side residual sums and counts.

    Parameters
    ----------
    name:
        Objective identifier (``balance``, ``total`` or ``count_balance``).
    cardinality_weighted:
        When true, each side's value is additionally multiplied by the side's
        record count.  The single-task objective (Eq. 9) is already implicitly
        weighted through the residual sum, so this is false by default; the
        multi-objective variant (Eq. 13) multiplies explicitly, matching the
        paper's formulation.
    """

    name: str = "balance"
    cardinality_weighted: bool = False

    def side_value(self, residual_sum: float, count: int) -> float:
        """The value of one side of a candidate split."""
        if self.name == "count_balance":
            return float(count)
        value = abs(residual_sum)
        if self.cardinality_weighted:
            value *= count
        return value

    def score(
        self,
        left_residual_sum: float,
        left_count: int,
        right_residual_sum: float,
        right_count: int,
    ) -> float:
        """The objective value ``z_k`` for one candidate split (lower is better)."""
        left = self.side_value(left_residual_sum, left_count)
        right = self.side_value(right_residual_sum, right_count)
        if self.name == "total":
            return left + right
        # "balance" and "count_balance" both minimise the imbalance.
        return abs(left - right)

    def score_prefixes(
        self,
        prefix_residual_sums: np.ndarray,
        prefix_counts: np.ndarray,
        total_residual_sum: float,
        total_count: int,
    ) -> np.ndarray:
        """Vectorised :meth:`score` over every candidate prefix.

        ``prefix_residual_sums[i]`` / ``prefix_counts[i]`` describe the left
        side when the split keeps rows ``0..i`` on the left.
        """
        prefix_residual_sums = np.asarray(prefix_residual_sums, dtype=float)
        prefix_counts = np.asarray(prefix_counts, dtype=float)
        right_sums = total_residual_sum - prefix_residual_sums
        right_counts = total_count - prefix_counts

        if self.name == "count_balance":
            left_values = prefix_counts
            right_values = right_counts
        else:
            left_values = np.abs(prefix_residual_sums)
            right_values = np.abs(right_sums)
            if self.cardinality_weighted:
                left_values = left_values * prefix_counts
                right_values = right_values * right_counts

        if self.name == "total":
            return left_values + right_values
        return np.abs(left_values - right_values)


_OBJECTIVES: Dict[str, str] = {
    "balance": "paper Eq. 9: minimise the imbalance of side miscalibration",
    "total": "ablation: minimise the total side miscalibration",
    "count_balance": "ablation: balance record counts (median-like surrogate)",
}


def available_objectives() -> Tuple[str, ...]:
    """Names of the registered split objectives."""
    return tuple(_OBJECTIVES)


def describe_objective(name: str) -> str:
    """One-line description of an objective."""
    if name not in _OBJECTIVES:
        raise ConfigurationError(
            f"unknown objective {name!r}; available: {available_objectives()}"
        )
    return _OBJECTIVES[name]


def make_scorer(name: str = "balance", cardinality_weighted: bool = False) -> SplitScorer:
    """Validate ``name`` and build the corresponding :class:`SplitScorer`."""
    if name not in _OBJECTIVES:
        raise ConfigurationError(
            f"unknown objective {name!r}; available: {available_objectives()}"
        )
    return SplitScorer(name=name, cardinality_weighted=cardinality_weighted)
