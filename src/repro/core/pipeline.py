"""End-to-end re-districting pipeline.

Every experiment in the paper follows the same loop:

1. derive labels for the task and split the data into train / test;
2. run a partitioner on the *training* portion to obtain new neighborhoods;
3. re-assign the neighborhood feature of both portions from the partition;
4. train the final classifier on the re-districted training data (optionally
   with the partitioner's sample weights, for the re-weighting baseline);
5. evaluate accuracy, overall miscalibration, ECE, and ENCE on the train and
   test portions.

:class:`RedistrictingPipeline` implements this loop once so the figure
experiments and benchmarks only differ in which partitioners and datasets
they feed in.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Dict, Optional

import numpy as np

from ..config import PAPER_ECE_BINS
from ..datasets.dataset import SpatialDataset
from ..datasets.labels import LabelTask
from ..datasets.splits import TrainTestSplit, split_dataset
from ..exceptions import ExperimentError
from ..fairness.ence import expected_neighborhood_calibration_error
from ..ml.base import Classifier
from ..ml.calibration import expected_calibration_error, miscalibration
from ..ml.metrics import accuracy_score, roc_auc_score
from ..ml.model_selection import ModelFactory
from ..ml.preprocessing import FeaturePipeline
from ..rng import SeedLike
from ..spatial.partition import Partition
from .base import PartitionerOutput, SpatialPartitioner
from .results import EvaluationMetrics


@dataclass
class PipelineResult:
    """Everything produced by one pipeline run."""

    method: str
    partition: Partition
    train_metrics: EvaluationMetrics
    test_metrics: EvaluationMetrics
    model: Classifier
    build_seconds: float
    train_seconds: float
    partitioner_metadata: Dict[str, Any] = field(default_factory=dict)

    @property
    def n_neighborhoods(self) -> int:
        return len(self.partition)


class RedistrictingPipeline:
    """Shared train -> partition -> re-district -> retrain -> evaluate loop.

    Parameters
    ----------
    model_factory:
        Produces a fresh classifier each time one is needed.
    test_fraction:
        Fraction of records held out for evaluation.
    ece_bins:
        Number of bins for the ECE metric.
    seed:
        Seed controlling the train/test split.
    """

    def __init__(
        self,
        model_factory: ModelFactory,
        test_fraction: float = 0.3,
        ece_bins: int = PAPER_ECE_BINS,
        seed: SeedLike = None,
    ) -> None:
        if not 0.0 < test_fraction < 1.0:
            raise ExperimentError(f"test_fraction must be in (0, 1), got {test_fraction}")
        self._model_factory = model_factory
        self._test_fraction = float(test_fraction)
        self._ece_bins = int(ece_bins)
        self._seed = seed

    # -- public API -------------------------------------------------------------

    def run(
        self,
        dataset: SpatialDataset,
        task: LabelTask,
        partitioner: SpatialPartitioner,
    ) -> PipelineResult:
        """Run the full loop for one dataset, one task and one partitioner."""
        labels = task.labels(dataset)
        split = split_dataset(
            dataset, labels, test_fraction=self._test_fraction, seed=self._seed
        )
        return self.run_split(split, partitioner)

    def run_split(
        self,
        split: TrainTestSplit,
        partitioner: SpatialPartitioner,
        precomputed: Optional[PartitionerOutput] = None,
    ) -> PipelineResult:
        """Run the loop on an existing train/test split.

        ``precomputed`` lets callers reuse a partition built elsewhere (the
        multi-objective experiment builds one partition and evaluates it under
        several tasks).
        """
        build_start = time.perf_counter()
        if precomputed is None:
            output = partitioner.build(split.train, split.train_labels, self._model_factory)
        else:
            output = precomputed
        build_seconds = time.perf_counter() - build_start

        partition = output.partition
        train = split.train.with_partition(partition)
        test = split.test.with_partition(partition)

        train_start = time.perf_counter()
        matrix_train, names = train.training_matrix(include_neighborhood=True)
        matrix_test, _ = test.training_matrix(include_neighborhood=True)
        pipeline = FeaturePipeline(categorical_index=len(names) - 1)
        transformed_train = pipeline.fit_transform(matrix_train)
        transformed_test = pipeline.transform(matrix_test)

        model = self._model_factory()
        model.fit(transformed_train, split.train_labels, sample_weight=output.sample_weights)
        train_seconds = time.perf_counter() - train_start

        train_scores = model.predict_proba(transformed_train)
        test_scores = model.predict_proba(transformed_test)

        train_metrics = self._evaluate(
            train_scores, split.train_labels, train.neighborhoods, len(partition)
        )
        test_metrics = self._evaluate(
            test_scores, split.test_labels, test.neighborhoods, len(partition)
        )
        return PipelineResult(
            method=partitioner.name,
            partition=partition,
            train_metrics=train_metrics,
            test_metrics=test_metrics,
            model=model,
            build_seconds=build_seconds,
            train_seconds=train_seconds,
            partitioner_metadata=dict(output.metadata),
        )

    # -- internals ------------------------------------------------------------------

    def _evaluate(
        self,
        scores: np.ndarray,
        labels: np.ndarray,
        neighborhoods: np.ndarray,
        n_neighborhoods: int,
    ) -> EvaluationMetrics:
        predictions = (scores >= 0.5).astype(int)
        return EvaluationMetrics(
            accuracy=accuracy_score(labels, predictions),
            miscalibration=miscalibration(scores, labels),
            ece=expected_calibration_error(scores, labels, n_bins=self._ece_bins),
            ence=expected_neighborhood_calibration_error(scores, labels, neighborhoods),
            auc=roc_auc_score(labels, scores),
            n_records=int(labels.shape[0]),
            n_neighborhoods=int(n_neighborhoods),
        )
