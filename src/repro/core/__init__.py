"""Core contribution: fairness-aware spatial index construction.

This package implements the paper's algorithms and baselines behind a single
partitioner interface:

* :class:`~repro.core.fair_kdtree.FairKDTreePartitioner` — Algorithm 1 + 2.
* :class:`~repro.core.iterative.IterativeFairKDTreePartitioner` — Algorithm 3.
* :class:`~repro.core.multi_objective.MultiObjectiveFairKDTreePartitioner` —
  Section 4.3.
* :class:`~repro.core.median_kdtree.MedianKDTreePartitioner` — the standard
  KD-tree baseline.
* :class:`~repro.core.grid_reweighting.GridReweightingPartitioner` — uniform
  grid neighborhoods with Kamiran-Calders instance re-weighting.
* :class:`~repro.core.pipeline.RedistrictingPipeline` — the end-to-end
  train -> partition -> re-district -> retrain -> evaluate loop shared by all
  experiments.
* :mod:`~repro.core.split_engine` — pluggable split-statistics engines; the
  default prefix-sum engine turns every candidate-split evaluation into
  constant-time cumulative-table reads.
"""

from ..registry import PARTITIONERS
from .base import PartitionerOutput, SpatialPartitioner
from .fair_kdtree import FairKDTreePartitioner
from .fair_quadtree import FairQuadTreePartitioner
from .grid_reweighting import GridReweightingPartitioner
from .iterative import IterativeFairKDTreePartitioner
from .median_kdtree import MedianKDTreePartitioner
from .multi_objective import MultiObjectiveFairKDTreePartitioner
from .objective import SplitScorer, available_objectives
from .pipeline import PipelineResult, RedistrictingPipeline
from .results import EvaluationMetrics, MethodComparison
from .split import SplitDecision, best_axis_split, split_neighborhood
from .split_engine import (
    DEFAULT_SPLIT_ENGINE,
    SPLIT_ENGINES,
    PrefixSumEngine,
    RecordScanEngine,
    SplitEngine,
    make_split_engine,
)

__all__ = [
    "SpatialPartitioner",
    "PartitionerOutput",
    "FairKDTreePartitioner",
    "FairQuadTreePartitioner",
    "IterativeFairKDTreePartitioner",
    "MultiObjectiveFairKDTreePartitioner",
    "MedianKDTreePartitioner",
    "GridReweightingPartitioner",
    "SplitScorer",
    "available_objectives",
    "SplitDecision",
    "split_neighborhood",
    "best_axis_split",
    "SplitEngine",
    "PrefixSumEngine",
    "RecordScanEngine",
    "make_split_engine",
    "SPLIT_ENGINES",
    "DEFAULT_SPLIT_ENGINE",
    "RedistrictingPipeline",
    "PipelineResult",
    "EvaluationMetrics",
    "MethodComparison",
]

# Zipcode tessellations are a valid partitioning *method* (accepted by
# PartitionerConfig, compared in disparity audits) but have no partitioner
# class: the regions come from real zipcode geometry in
# repro.datasets.zipcodes, not from a build() call.  Registering the name
# with obj=None keeps the registry the single list of known methods while
# letting the facade raise a precise error for attempts to construct one.
PARTITIONERS.register(
    "zipcode",
    None,
    summary="real zipcode tessellation (built by repro.datasets.zipcodes)",
    paper_ref="Section 5.1 (real-world baseline regions)",
)
