"""Grid (Reweighting) baseline.

The paper compares against "Reweighting over grid — an adaptation of the
re-weighting approach used in [15] and deployed in geospatial tools such as
IBM AI Fairness 360".  Neighborhoods stay fixed (a uniform grid of roughly
``2**height`` tiles, so the comparison is granularity-matched with the tree
methods at the same height) and fairness is pursued by Kamiran-Calders
instance re-weighting of the final model's training data.
"""

from __future__ import annotations

import math

import numpy as np

from ..datasets.dataset import SpatialDataset
from ..exceptions import ConfigurationError
from ..fairness.reweighting import kamiran_calders_weights
from ..ml.model_selection import ModelFactory
from ..registry import register_partitioner
from ..spatial.partition import Partition, uniform_partition
from .base import PartitionerOutput, SpatialPartitioner


def grid_blocks_for_height(height: int, grid_rows: int, grid_cols: int) -> tuple[int, int]:
    """Number of row/column blocks giving about ``2**height`` tiles.

    Rows get the extra power of two when the height is odd, mirroring how the
    KD-tree alternates axes starting with rows.  Block counts are capped at
    the grid resolution.
    """
    if height < 0:
        raise ConfigurationError("height must be non-negative")
    row_blocks = 2 ** math.ceil(height / 2)
    col_blocks = 2 ** math.floor(height / 2)
    return min(row_blocks, grid_rows), min(col_blocks, grid_cols)


@register_partitioner(
    "grid_reweighting",
    aliases=("reweighting",),
    summary="uniform grid neighborhoods + Kamiran-Calders instance re-weighting",
    paper_ref="baseline",
    baseline=True,
    paper_order=3,
    servable=True,
)
class GridReweightingPartitioner(SpatialPartitioner):
    """Uniform-grid neighborhoods plus Kamiran-Calders sample weights."""

    name = "grid_reweighting"

    def __init__(self, height: int) -> None:
        if height < 0:
            raise ConfigurationError(f"height must be non-negative, got {height}")
        self._height = int(height)

    @property
    def height(self) -> int:
        return self._height

    def build(
        self,
        dataset: SpatialDataset,
        labels: np.ndarray,
        model_factory: ModelFactory,
    ) -> PartitionerOutput:
        labels = np.asarray(labels, dtype=int)
        row_blocks, col_blocks = grid_blocks_for_height(
            self._height, dataset.grid.rows, dataset.grid.cols
        )
        partition: Partition = uniform_partition(dataset.grid, row_blocks, col_blocks)
        assignment = partition.assign(dataset.cell_rows, dataset.cell_cols)
        weights = kamiran_calders_weights(assignment, labels)
        return PartitionerOutput(
            partition=partition,
            sample_weights=weights,
            metadata={
                "method": self.name,
                "height": self._height,
                "row_blocks": row_blocks,
                "col_blocks": col_blocks,
                "n_model_trainings": 0,
            },
        )
