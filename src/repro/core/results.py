"""Result containers for pipeline runs and method comparisons."""

from __future__ import annotations

from dataclasses import asdict, dataclass, field
from typing import Any, Dict, List, Sequence


@dataclass(frozen=True)
class EvaluationMetrics:
    """Metrics of one trained model on one evaluation set (train or test)."""

    accuracy: float
    miscalibration: float
    """Overall |e(h) - o(h)| of the model on this set."""
    ece: float
    ence: float
    auc: float
    n_records: int
    n_neighborhoods: int

    def as_dict(self) -> Dict[str, float]:
        return {key: float(value) for key, value in asdict(self).items()}


@dataclass(frozen=True)
class MethodComparison:
    """One method evaluated at one configuration (city, model, height)."""

    method: str
    city: str
    model: str
    height: int
    train: EvaluationMetrics
    test: EvaluationMetrics
    build_seconds: float
    metadata: Dict[str, Any] = field(default_factory=dict)

    def row(self) -> Dict[str, Any]:
        """Flat dictionary representation suitable for text tables."""
        return {
            "method": self.method,
            "city": self.city,
            "model": self.model,
            "height": self.height,
            "ence_train": self.train.ence,
            "ence_test": self.test.ence,
            "accuracy_test": self.test.accuracy,
            "miscal_train": self.train.miscalibration,
            "miscal_test": self.test.miscalibration,
            "ece_test": self.test.ece,
            "n_neighborhoods": self.test.n_neighborhoods,
            "build_seconds": self.build_seconds,
        }


def comparisons_to_rows(comparisons: Sequence[MethodComparison]) -> List[Dict[str, Any]]:
    """Flatten comparisons into a list of table rows."""
    return [comparison.row() for comparison in comparisons]


def best_method_per_height(
    comparisons: Sequence[MethodComparison], metric: str = "ence_test"
) -> Dict[int, str]:
    """The method achieving the lowest ``metric`` at each height."""
    best: Dict[int, MethodComparison] = {}
    for comparison in comparisons:
        row = comparison.row()
        height = int(row["height"])
        if height not in best or row[metric] < best[height].row()[metric]:
            best[height] = comparison
    return {height: comparison.method for height, comparison in best.items()}
