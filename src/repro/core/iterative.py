"""Iterative Fair KD-tree (Algorithm 3 of the paper).

The single-shot Fair KD-tree computes confidence scores once, on the base
grid, and never refreshes them.  The iterative variant retrains the model at
every tree level (breadth-first): after level ``i`` is built, the dataset's
neighborhood feature is updated to the level-``i`` partition, the model is
retrained, and the refreshed residuals drive the level-``i+1`` splits.  The
cost is one extra model training per level (Theorem 4).
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from ..datasets.dataset import SpatialDataset
from ..exceptions import ConfigurationError
from ..ml.model_selection import ModelFactory
from ..registry import register_partitioner
from ..spatial.partition import Partition
from ..spatial.region import GridRegion
from .base import PartitionerOutput, SpatialPartitioner, train_scores_on_dataset
from .objective import SplitScorer, make_scorer
from .split import best_axis_split
from .split_engine import DEFAULT_SPLIT_ENGINE, make_split_engine, validate_split_engine


@register_partitioner(
    "iterative_fair_kdtree",
    aliases=("iterative",),
    summary="breadth-first fair KD-tree; retrains the model at every level",
    paper_ref="Algorithm 3",
    accepts_split_engine=True,
    accepts_objective=True,
    tree_based=True,
    paper_order=2,
    servable=True,
)
class IterativeFairKDTreePartitioner(SpatialPartitioner):
    """Breadth-first fair KD-tree with per-level model retraining.

    Parameters
    ----------
    height:
        Number of BFS levels (the final partition has at most ``2**height``
        neighborhoods).
    objective:
        Split objective name; the paper uses the balance objective (Eq. 9).
    min_records_per_leaf:
        Optional minimum training records per side for a split to be accepted.
    split_engine:
        ``"prefix_sum"`` (default) or ``"record_scan"``.  The residuals are
        refreshed at every level, so the prefix-sum engine rebuilds its
        tables once per level and serves the whole frontier from them.
    """

    name = "iterative_fair_kdtree"

    def __init__(
        self,
        height: int,
        objective: str = "balance",
        min_records_per_leaf: int = 0,
        split_engine: str = DEFAULT_SPLIT_ENGINE,
    ) -> None:
        if height < 0:
            raise ConfigurationError(f"height must be non-negative, got {height}")
        if min_records_per_leaf < 0:
            raise ConfigurationError("min_records_per_leaf must be non-negative")
        self._height = int(height)
        self._scorer: SplitScorer = make_scorer(objective)
        self._min_records = int(min_records_per_leaf)
        self._split_engine = validate_split_engine(split_engine)
        self._n_trainings = 0

    @property
    def height(self) -> int:
        return self._height

    @property
    def split_engine(self) -> str:
        """Name of the engine used to compute split statistics."""
        return self._split_engine

    @property
    def n_model_trainings(self) -> int:
        """Number of model trainings performed by the last :meth:`build` call."""
        return self._n_trainings

    def build(
        self,
        dataset: SpatialDataset,
        labels: np.ndarray,
        model_factory: ModelFactory,
    ) -> PartitionerOutput:
        labels = np.asarray(labels, dtype=int)
        grid = dataset.grid
        frontier: List[GridRegion] = [GridRegion.full(grid)]
        self._n_trainings = 0

        for level in range(self._height):
            partition = Partition(grid, frontier)
            current = dataset.with_partition(partition)
            scores, _, _ = train_scores_on_dataset(current, labels, model_factory)
            self._n_trainings += 1
            residuals = scores - labels.astype(float)
            engine = make_split_engine(
                self._split_engine, grid, dataset.cell_rows, dataset.cell_cols, residuals
            )

            axis = level % 2
            next_frontier: List[GridRegion] = []
            any_split = False
            for region in frontier:
                decision = best_axis_split(
                    region, preferred_axis=axis, scorer=self._scorer, engine=engine
                )
                reject = decision is not None and self._min_records and (
                    min(decision.left_count, decision.right_count) < self._min_records
                )
                if decision is None or reject:
                    next_frontier.append(region)
                    continue
                next_frontier.extend([decision.left, decision.right])
                any_split = True
            frontier = next_frontier
            if not any_split:
                break

        final_partition = Partition(grid, frontier)
        return PartitionerOutput(
            partition=final_partition,
            metadata={
                "method": self.name,
                "height": self._height,
                "objective": self._scorer.name,
                "split_engine": self._split_engine,
                "n_model_trainings": self._n_trainings,
            },
        )
