"""Fair KD-tree (Algorithm 1 of the paper).

The algorithm proceeds in three steps:

1. treat the whole map as a single neighborhood, train the classifier once,
   and obtain per-record confidence scores;
2. recursively split the map (depth-first, alternating axes) choosing each
   split index to minimise the fairness objective (Eq. 9) computed from the
   residuals ``s_u - y_u`` of step 1;
3. the leaf set becomes the new neighborhoods; callers re-assign the
   neighborhood feature and retrain (handled by
   :class:`~repro.core.pipeline.RedistrictingPipeline`).
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from ..datasets.dataset import SpatialDataset
from ..exceptions import ConfigurationError
from ..ml.model_selection import ModelFactory
from ..registry import register_partitioner
from ..spatial.kdtree import KDNode
from ..spatial.partition import Partition
from ..spatial.region import GridRegion
from .base import PartitionerOutput, SpatialPartitioner, train_scores_on_dataset
from .objective import SplitScorer, make_scorer
from .split import best_axis_split
from .split_engine import (
    DEFAULT_SPLIT_ENGINE,
    SplitEngine,
    make_split_engine,
    validate_split_engine,
)


@register_partitioner(
    "fair_kdtree",
    aliases=("fair",),
    summary="fairness-aware KD-tree: train once, split on residual balance",
    paper_ref="Algorithm 1 + 2",
    accepts_split_engine=True,
    accepts_objective=True,
    tree_based=True,
    paper_order=1,
    servable=True,
)
class FairKDTreePartitioner(SpatialPartitioner):
    """Fairness-aware KD-tree construction (single classification task).

    Parameters
    ----------
    height:
        Tree height ``th``; the partition has at most ``2**height``
        neighborhoods.
    objective:
        Split objective name (see :func:`repro.core.objective.available_objectives`).
    min_records_per_leaf:
        Optional lower bound on the number of training records per leaf; a
        split producing a smaller side is rejected (the node stays a leaf).
        The paper does not bound leaf sizes, so the default is 0.
    split_engine:
        How per-node split statistics are computed: ``"prefix_sum"`` (default)
        builds cumulative-sum tables once per tree, ``"record_scan"`` re-scans
        the record arrays at every node (the original, slower path, kept for
        equivalence testing).
    """

    name = "fair_kdtree"

    def __init__(
        self,
        height: int,
        objective: str = "balance",
        min_records_per_leaf: int = 0,
        split_engine: str = DEFAULT_SPLIT_ENGINE,
    ) -> None:
        if height < 0:
            raise ConfigurationError(f"height must be non-negative, got {height}")
        if min_records_per_leaf < 0:
            raise ConfigurationError("min_records_per_leaf must be non-negative")
        self._height = int(height)
        self._scorer: SplitScorer = make_scorer(objective)
        self._min_records = int(min_records_per_leaf)
        self._split_engine = validate_split_engine(split_engine)
        self._root: Optional[KDNode] = None

    @property
    def height(self) -> int:
        return self._height

    @property
    def split_engine(self) -> str:
        """Name of the engine used to compute split statistics."""
        return self._split_engine

    @property
    def root(self) -> Optional[KDNode]:
        """Root of the last constructed tree (for inspection)."""
        return self._root

    # -- Algorithm 1 ------------------------------------------------------------

    def build(
        self,
        dataset: SpatialDataset,
        labels: np.ndarray,
        model_factory: ModelFactory,
    ) -> PartitionerOutput:
        base = dataset.with_neighborhoods(np.zeros(dataset.n_records, dtype=int))
        scores, model, _ = train_scores_on_dataset(base, labels, model_factory)
        residuals = scores - np.asarray(labels, dtype=float)
        partition = self.build_from_residuals(dataset, residuals)
        return PartitionerOutput(
            partition=partition,
            metadata={
                "method": self.name,
                "height": self._height,
                "objective": self._scorer.name,
                "split_engine": self._split_engine,
                "n_model_trainings": 1,
                "initial_model": type(model).__name__,
            },
        )

    def build_from_residuals(
        self, dataset: SpatialDataset, residuals: np.ndarray
    ) -> Partition:
        """Run the recursive splitting given precomputed residuals.

        Exposed separately so the multi-objective variant (which aggregates
        residuals across tasks) can reuse the identical tree construction.
        """
        residuals = np.asarray(residuals, dtype=float)
        if residuals.shape != (dataset.n_records,):
            raise ConfigurationError("residuals must match the dataset's record count")
        engine = make_split_engine(
            self._split_engine,
            dataset.grid,
            dataset.cell_rows,
            dataset.cell_cols,
            residuals,
        )
        self._root = self._build_node(GridRegion.full(dataset.grid), engine, depth=0)
        regions = [leaf.region for leaf in self._root.leaves()]
        return Partition(dataset.grid, regions)

    def _build_node(self, region: GridRegion, engine: SplitEngine, depth: int) -> KDNode:
        node = KDNode(region=region, depth=depth)
        if depth >= self._height:
            return node
        decision = best_axis_split(
            region, preferred_axis=depth % 2, scorer=self._scorer, engine=engine
        )
        if decision is None:
            return node
        if self._min_records and min(decision.left_count, decision.right_count) < self._min_records:
            return node
        node.axis = decision.axis
        node.split_index = decision.index
        node.metadata["objective_score"] = decision.score
        node.left = self._build_node(decision.left, engine, depth + 1)
        node.right = self._build_node(decision.right, engine, depth + 1)
        return node

    def leaf_regions(self) -> List[GridRegion]:
        """Regions of the last constructed tree's leaves."""
        if self._root is None:
            return []
        return [leaf.region for leaf in self._root.leaves()]
