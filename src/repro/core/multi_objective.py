"""Multi-Objective Fair KD-tree (Section 4.3 of the paper).

A single partitioning must serve ``m`` classification tasks.  One classifier
is trained per task on the base grid; per-record residual vectors
``v_i = s_i - y_i`` are combined with task weights ``alpha_i`` into
``v_tot = sum_i alpha_i * v_i`` (Eqs. 11-12); the tree construction is then
identical to the single-task Fair KD-tree with the objective of Eq. 13, i.e.
cardinality-weighted side values.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..datasets.dataset import SpatialDataset
from ..exceptions import ConfigurationError
from ..ml.model_selection import ModelFactory
from ..registry import register_partitioner
from .base import PartitionerOutput, SpatialPartitioner, train_scores_on_dataset
from .fair_kdtree import FairKDTreePartitioner
from .objective import make_scorer
from .split_engine import DEFAULT_SPLIT_ENGINE, validate_split_engine


@register_partitioner(
    "multi_objective_fair_kdtree",
    aliases=("multi_objective",),
    summary="one fair partition serving several tasks (alpha-weighted residuals)",
    paper_ref="Section 4.3 (Eq. 11-13)",
    accepts_split_engine=True,
    accepts_objective=True,
    accepts_alphas=True,
    tree_based=True,
    multi_task=True,
)
class MultiObjectiveFairKDTreePartitioner(SpatialPartitioner):
    """Fair KD-tree serving several classification tasks at once.

    Parameters
    ----------
    height:
        Tree height.
    alphas:
        Task priorities; must be non-negative and sum to 1 (Section 4.3).
        The number of alphas fixes the number of tasks expected by
        :meth:`build_multi`.
    objective:
        Split objective name, scored on the aggregated residuals.
    split_engine:
        ``"prefix_sum"`` (default) or ``"record_scan"``; forwarded to the
        underlying fair KD-tree construction.
    """

    name = "multi_objective_fair_kdtree"

    def __init__(
        self,
        height: int,
        alphas: Sequence[float] = (0.5, 0.5),
        objective: str = "balance",
        split_engine: str = DEFAULT_SPLIT_ENGINE,
    ) -> None:
        if height < 0:
            raise ConfigurationError(f"height must be non-negative, got {height}")
        alphas = tuple(float(a) for a in alphas)
        if not alphas:
            raise ConfigurationError("at least one task weight is required")
        if any(a < 0 for a in alphas):
            raise ConfigurationError(f"task weights must be non-negative, got {alphas}")
        if abs(sum(alphas) - 1.0) > 1e-9:
            raise ConfigurationError(f"task weights must sum to 1, got {alphas}")
        self._height = int(height)
        self._alphas = alphas
        self._split_engine = validate_split_engine(split_engine)
        # Eq. 13 multiplies each side's aggregated residual by the side's
        # cardinality, so the scorer is cardinality-weighted.
        self._scorer = make_scorer(objective, cardinality_weighted=True)
        self._objective_name = objective

    @property
    def height(self) -> int:
        return self._height

    @property
    def alphas(self) -> Sequence[float]:
        return self._alphas

    # -- single-task convenience --------------------------------------------------

    def build(
        self,
        dataset: SpatialDataset,
        labels: np.ndarray,
        model_factory: ModelFactory,
    ) -> PartitionerOutput:
        """Single-label entry point (treats the problem as one task).

        Provided so the multi-objective partitioner satisfies the common
        :class:`SpatialPartitioner` interface; experiments use
        :meth:`build_multi`.
        """
        return self.build_multi(dataset, [np.asarray(labels, dtype=int)], model_factory)

    # -- multi-task construction -----------------------------------------------------

    def build_multi(
        self,
        dataset: SpatialDataset,
        task_labels: Sequence[np.ndarray],
        model_factory: ModelFactory,
    ) -> PartitionerOutput:
        """Build one partition that serves every task in ``task_labels``."""
        if len(task_labels) != len(self._alphas):
            raise ConfigurationError(
                f"expected {len(self._alphas)} label vectors (one per alpha), "
                f"got {len(task_labels)}"
            )
        base = dataset.with_neighborhoods(np.zeros(dataset.n_records, dtype=int))
        aggregated = np.zeros(dataset.n_records, dtype=float)
        trainings = 0
        for alpha, labels in zip(self._alphas, task_labels):
            labels = np.asarray(labels, dtype=int)
            if labels.shape != (dataset.n_records,):
                raise ConfigurationError("every label vector must match the record count")
            scores, _, _ = train_scores_on_dataset(base, labels, model_factory)
            trainings += 1
            aggregated += alpha * (scores - labels.astype(float))

        tree = FairKDTreePartitioner(
            height=self._height,
            objective=self._objective_name,
            split_engine=self._split_engine,
        )
        tree._scorer = self._scorer  # reuse the identical recursion with Eq. 13 scoring
        partition = tree.build_from_residuals(dataset, aggregated)
        return PartitionerOutput(
            partition=partition,
            metadata={
                "method": self.name,
                "height": self._height,
                "alphas": self._alphas,
                "objective": self._objective_name,
                "split_engine": self._split_engine,
                "n_model_trainings": trainings,
            },
        )
