"""Experiment harness: one module per figure of the paper's evaluation.

Each experiment module exposes a ``run_*`` function returning plain dataclass
results plus a ``*_rows`` helper flattening them into table rows; the
benchmark suite and the examples render those rows with
:mod:`repro.experiments.reporting`.

Experiment index (see DESIGN.md section 4):

* Figure 6 — :mod:`repro.experiments.disparity`
* Figure 7 — :mod:`repro.experiments.ence_sweep`
* Figure 8 — :mod:`repro.experiments.utility_sweep`
* Figure 9 — :mod:`repro.experiments.feature_heatmap`
* Figure 10 — :mod:`repro.experiments.multi_objective`
* Timing (Section 5.3.1) — :mod:`repro.experiments.timing`
"""

from .disparity import run_disparity_experiment
from .ence_sweep import EnceSweepResult, run_ence_sweep
from .feature_heatmap import FeatureHeatmapResult, run_feature_heatmap
from .multi_objective import MultiObjectiveResult, run_multi_objective_experiment
from .reporting import format_table, format_series
from .runner import ExperimentContext, build_dataset, default_context
from .timing import TimingResult, run_timing_experiment
from .utility_sweep import UtilitySweepResult, run_utility_sweep


def __getattr__(name: str):
    """Deprecated re-exports (``PAPER_METHODS``, ``build_partitioner``).

    Forwarded lazily to :mod:`repro.experiments.runner`, whose shims emit
    the :class:`DeprecationWarning` — importing this package stays silent.
    """
    if name in ("PAPER_METHODS", "build_partitioner"):
        from . import runner

        return getattr(runner, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")

__all__ = [
    "ExperimentContext",
    "default_context",
    "build_dataset",
    "build_partitioner",
    "PAPER_METHODS",
    "run_disparity_experiment",
    "run_ence_sweep",
    "EnceSweepResult",
    "run_utility_sweep",
    "UtilitySweepResult",
    "run_feature_heatmap",
    "FeatureHeatmapResult",
    "run_multi_objective_experiment",
    "MultiObjectiveResult",
    "run_timing_experiment",
    "TimingResult",
    "format_table",
    "format_series",
]
