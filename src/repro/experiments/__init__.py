"""Experiment harness: one module per figure of the paper's evaluation.

Each experiment module exposes a ``run_*`` function returning plain dataclass
results plus a ``*_rows`` helper flattening them into table rows; the
benchmark suite and the examples render those rows with
:mod:`repro.experiments.reporting`.

Experiment index (see DESIGN.md section 4):

* Figure 6 — :mod:`repro.experiments.disparity`
* Figure 7 — :mod:`repro.experiments.ence_sweep`
* Figure 8 — :mod:`repro.experiments.utility_sweep`
* Figure 9 — :mod:`repro.experiments.feature_heatmap`
* Figure 10 — :mod:`repro.experiments.multi_objective`
* Timing (Section 5.3.1) — :mod:`repro.experiments.timing`
"""

from .disparity import run_disparity_experiment
from .ence_sweep import EnceSweepResult, run_ence_sweep
from .feature_heatmap import FeatureHeatmapResult, run_feature_heatmap
from .multi_objective import MultiObjectiveResult, run_multi_objective_experiment
from .reporting import format_table, format_series
from .runner import (
    ExperimentContext,
    build_dataset,
    build_partitioner,
    default_context,
    PAPER_METHODS,
)
from .timing import TimingResult, run_timing_experiment
from .utility_sweep import UtilitySweepResult, run_utility_sweep

__all__ = [
    "ExperimentContext",
    "default_context",
    "build_dataset",
    "build_partitioner",
    "PAPER_METHODS",
    "run_disparity_experiment",
    "run_ence_sweep",
    "EnceSweepResult",
    "run_utility_sweep",
    "UtilitySweepResult",
    "run_feature_heatmap",
    "FeatureHeatmapResult",
    "run_multi_objective_experiment",
    "MultiObjectiveResult",
    "run_timing_experiment",
    "TimingResult",
    "format_table",
    "format_series",
]
