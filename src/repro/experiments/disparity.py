"""Figure 6: evidence of model disparity on geospatial neighborhoods.

A logistic-regression model is trained with zip-code neighborhoods as an
ordinary feature; the experiment reports overall train/test calibration (both
close to 1 in the paper) next to the per-neighborhood calibration ratio and
ECE of the ten most populated zip codes, which deviate substantially.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from ..api.facade import model_factory_for
from ..datasets.labels import LabelTask, act_task
from ..fairness.disparity import DisparityAudit, audit_disparity, audit_rows
from .reporting import format_table
from .runner import ExperimentContext, default_context


@dataclass(frozen=True)
class DisparityExperimentResult:
    """Figure 6 result: one audit per city."""

    audits: Dict[str, DisparityAudit]

    def rows(self, city: str) -> List[dict]:
        """Per-neighborhood rows (rank, ratio, ECE) for one city."""
        return audit_rows(self.audits[city])

    def overall_calibration(self, city: str) -> Tuple[float, float]:
        """(train ratio, test ratio) overall calibration for one city."""
        audit = self.audits[city]
        return audit.overall_train.ratio, audit.overall_test.ratio

    def render(self) -> str:
        """Text rendering of the full figure (both cities)."""
        sections = []
        for city, audit in self.audits.items():
            header = (
                f"Figure 6 — {city}: overall calibration "
                f"train={audit.overall_train.ratio:.3f} test={audit.overall_test.ratio:.3f}"
            )
            sections.append(format_table(audit_rows(audit), title=header))
        return "\n\n".join(sections)


def run_disparity_experiment(
    context: ExperimentContext | None = None,
    task: LabelTask | None = None,
    model_kind: str = "logistic_regression",
    n_zipcodes: int = 40,
    top_k: int = 10,
) -> DisparityExperimentResult:
    """Run the Figure 6 audit for every city in ``context``."""
    context = context or default_context()
    task = task or act_task()
    factory = model_factory_for(model_kind)
    audits: Dict[str, DisparityAudit] = {}
    for city in context.cities:
        dataset = context.dataset(city)
        audits[city] = audit_disparity(
            dataset,
            task,
            factory,
            n_zipcodes=n_zipcodes,
            top_k=top_k,
            test_fraction=context.test_fraction,
            ece_bins=context.ece_bins,
            seed=context.seed,
        )
    return DisparityExperimentResult(audits=audits)
