"""Plain-text rendering of experiment results.

The paper's figures are line charts and bar charts; this repository reports
the same series as aligned text tables so results can be regenerated and
compared in any terminal / CI log without plotting dependencies.
"""

from __future__ import annotations

from typing import Any, Dict, Mapping, Sequence


def _format_value(value: Any, precision: int) -> str:
    if isinstance(value, bool):
        return str(value)
    if isinstance(value, float):
        return f"{value:.{precision}f}"
    return str(value)


def format_table(
    rows: Sequence[Mapping[str, Any]],
    columns: Sequence[str] | None = None,
    precision: int = 4,
    title: str | None = None,
) -> str:
    """Render ``rows`` (list of dicts) as an aligned text table."""
    if not rows:
        return f"{title}\n(no rows)" if title else "(no rows)"
    if columns is None:
        columns = list(rows[0].keys())
    rendered = [
        [_format_value(row.get(column, ""), precision) for column in columns] for row in rows
    ]
    widths = [
        max(len(str(column)), *(len(line[i]) for line in rendered))
        for i, column in enumerate(columns)
    ]
    header = "  ".join(str(column).ljust(widths[i]) for i, column in enumerate(columns))
    separator = "  ".join("-" * widths[i] for i in range(len(columns)))
    body = [
        "  ".join(line[i].ljust(widths[i]) for i in range(len(columns))) for line in rendered
    ]
    lines = ([title] if title else []) + [header, separator] + body
    return "\n".join(lines)


def format_series(
    series: Mapping[str, Mapping[Any, float]],
    x_label: str = "x",
    precision: int = 4,
    title: str | None = None,
) -> str:
    """Render ``{series_name: {x: y}}`` as a table with one column per series.

    This is the layout used for the paper's line charts (x = tree height,
    one line per method).
    """
    xs = sorted({x for values in series.values() for x in values})
    rows: list[Dict[str, Any]] = []
    for x in xs:
        row: Dict[str, Any] = {x_label: x}
        for name, values in series.items():
            if x in values:
                row[name] = values[x]
        rows.append(row)
    columns = [x_label] + list(series.keys())
    return format_table(rows, columns=columns, precision=precision, title=title)


def improvement_percent(baseline: float, value: float) -> float:
    """Relative improvement of ``value`` over ``baseline`` in percent.

    Positive means ``value`` is lower (better, for error metrics) than the
    baseline.  Zero baseline yields 0 to keep tables printable.
    """
    if baseline == 0:
        return 0.0
    return (baseline - value) / abs(baseline) * 100.0
