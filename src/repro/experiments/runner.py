"""Shared experiment context: datasets, model factories and partitioners.

Every figure experiment needs the same ingredients — a synthetic city
dataset, a classifier family, a set of partitioning methods and a tree-height
sweep.  :class:`ExperimentContext` bundles them so the figure modules stay
small and consistent.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Sequence, Tuple

from ..config import DatasetConfig, GridConfig, ModelConfig, PartitionerConfig
from ..core.base import SpatialPartitioner
from ..core.fair_kdtree import FairKDTreePartitioner
from ..core.fair_quadtree import FairQuadTreePartitioner
from ..core.grid_reweighting import GridReweightingPartitioner
from ..core.iterative import IterativeFairKDTreePartitioner
from ..core.median_kdtree import MedianKDTreePartitioner
from ..core.multi_objective import MultiObjectiveFairKDTreePartitioner
from ..core.pipeline import RedistrictingPipeline
from ..core.split_engine import DEFAULT_SPLIT_ENGINE
from ..datasets.dataset import SpatialDataset
from ..datasets.edgap import city_model, load_edgap_city
from ..exceptions import ExperimentError
from ..ml.model_selection import ModelFactory, factory_for

#: Methods compared in the paper's Figures 7 and 8, in presentation order.
PAPER_METHODS: Tuple[str, ...] = (
    "median_kdtree",
    "fair_kdtree",
    "iterative_fair_kdtree",
    "grid_reweighting",
)

#: Classifier families used in Figure 7.
PAPER_MODELS: Tuple[str, ...] = ("logistic_regression", "decision_tree", "naive_bayes")

#: Cities evaluated throughout Section 5.
PAPER_CITIES: Tuple[str, ...] = ("los_angeles", "houston")


def build_dataset(
    city: str,
    grid_rows: int = 32,
    grid_cols: int = 32,
    n_records: int | None = None,
    seed: int = 7,
) -> SpatialDataset:
    """Generate the synthetic EdGap-like dataset for ``city``."""
    model = city_model(city)
    config = DatasetConfig(
        city=model.name,
        n_records=n_records or model.n_records,
        grid=GridConfig(rows=grid_rows, cols=grid_cols),
        seed=seed,
    )
    return load_edgap_city(config)


def build_partitioner(
    method: str,
    height: int,
    alphas: Sequence[float] = (0.5, 0.5),
    split_engine: str = DEFAULT_SPLIT_ENGINE,
) -> SpatialPartitioner:
    """Instantiate a partitioner by its method name."""
    if method == "median_kdtree":
        return MedianKDTreePartitioner(height, split_engine=split_engine)
    if method == "fair_kdtree":
        return FairKDTreePartitioner(height, split_engine=split_engine)
    if method == "iterative_fair_kdtree":
        return IterativeFairKDTreePartitioner(height, split_engine=split_engine)
    if method == "grid_reweighting":
        return GridReweightingPartitioner(height)
    if method == "multi_objective_fair_kdtree":
        return MultiObjectiveFairKDTreePartitioner(
            height, alphas=alphas, split_engine=split_engine
        )
    if method == "fair_quadtree":
        # A fair quadtree of depth d is granularity-comparable to a KD-tree of
        # height 2d, so the requested height is halved (rounded up).
        return FairQuadTreePartitioner(depth=(height + 1) // 2, split_engine=split_engine)
    raise ExperimentError(f"unknown method {method!r}; known methods: {PAPER_METHODS}")


def build_partitioner_from_config(config: PartitionerConfig) -> SpatialPartitioner:
    """Instantiate a partitioner from a :class:`~repro.config.PartitionerConfig`.

    Honours every field of the configuration (method, height, objective,
    alpha weights and split engine), unlike :func:`build_partitioner` which
    covers the common method+height case.
    """
    if config.method == "median_kdtree":
        return MedianKDTreePartitioner(config.height, split_engine=config.split_engine)
    if config.method == "fair_kdtree":
        return FairKDTreePartitioner(
            config.height, objective=config.objective, split_engine=config.split_engine
        )
    if config.method == "iterative_fair_kdtree":
        return IterativeFairKDTreePartitioner(
            config.height, objective=config.objective, split_engine=config.split_engine
        )
    if config.method == "multi_objective_fair_kdtree":
        return MultiObjectiveFairKDTreePartitioner(
            config.height,
            alphas=config.alpha,
            objective=config.objective,
            split_engine=config.split_engine,
        )
    if config.method == "grid_reweighting":
        return GridReweightingPartitioner(config.height)
    raise ExperimentError(
        f"method {config.method!r} has no partitioner class "
        "(zipcode partitions come from repro.datasets.zipcodes)"
    )


@dataclass(frozen=True)
class ExperimentContext:
    """Everything needed to run a figure experiment.

    Attributes
    ----------
    cities:
        City names to evaluate.
    model_kinds:
        Classifier families to train.
    methods:
        Partitioning methods to compare.
    heights:
        Tree heights to sweep.
    grid_rows, grid_cols:
        Base-grid resolution (the paper does not fix one; 32x32 keeps runs
        fast while leaving room for height-10 trees).
    test_fraction, seed, ece_bins:
        Evaluation controls shared by every pipeline run.
    split_engine:
        Split-statistics engine used by every tree partitioner the
        experiments build (``"prefix_sum"`` or ``"record_scan"``).
    """

    cities: Tuple[str, ...] = PAPER_CITIES
    model_kinds: Tuple[str, ...] = ("logistic_regression",)
    methods: Tuple[str, ...] = PAPER_METHODS
    heights: Tuple[int, ...] = (4, 6, 8, 10)
    grid_rows: int = 32
    grid_cols: int = 32
    test_fraction: float = 0.3
    seed: int = 11
    ece_bins: int = 15
    dataset_seed: int = 7
    split_engine: str = DEFAULT_SPLIT_ENGINE
    datasets: Dict[str, SpatialDataset] = field(default_factory=dict, compare=False)

    def dataset(self, city: str) -> SpatialDataset:
        """Dataset for ``city`` (generated once per context and cached)."""
        if city not in self.datasets:
            self.datasets[city] = build_dataset(
                city, self.grid_rows, self.grid_cols, seed=self.dataset_seed
            )
        return self.datasets[city]

    def model_factory(self, kind: str) -> ModelFactory:
        """Classifier factory for the model family ``kind``."""
        return factory_for(ModelConfig(kind=kind))

    def pipeline(self, kind: str) -> RedistrictingPipeline:
        """A redistricting pipeline wired to this context's controls."""
        return RedistrictingPipeline(
            self.model_factory(kind),
            test_fraction=self.test_fraction,
            ece_bins=self.ece_bins,
            seed=self.seed,
        )


def default_context(**overrides) -> ExperimentContext:
    """The context used by the benchmark suite (small but representative)."""
    return ExperimentContext(**overrides)


def paper_context(**overrides) -> ExperimentContext:
    """A context mirroring the paper's full sweep (all models, heights 4-10)."""
    params = dict(
        model_kinds=PAPER_MODELS,
        heights=(4, 5, 6, 7, 8, 9, 10),
    )
    params.update(overrides)
    return ExperimentContext(**params)
