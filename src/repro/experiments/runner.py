"""Shared experiment context: datasets, model factories and partitioners.

Every figure experiment needs the same ingredients — a synthetic city
dataset, a classifier family, a set of partitioning methods and a tree-height
sweep.  :class:`ExperimentContext` bundles them so the figure modules stay
small and consistent.

Method and model rosters come from the registries
(:data:`repro.registry.PARTITIONERS` / :data:`repro.registry.MODELS`);
partitioners are instantiated through :func:`repro.api.make_partitioner`.
The old string-dispatch helpers (``build_partitioner``,
``build_partitioner_from_config``) and the ``PAPER_METHODS`` tuple remain
as thin deprecation shims over that registry path.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field
from typing import Dict, Sequence, Tuple

from ..api.facade import make_partitioner, model_factory_for
from ..api.specs import PartitionSpec
from ..config import DatasetConfig, GridConfig, PartitionerConfig
from ..core.base import SpatialPartitioner
from ..core.pipeline import RedistrictingPipeline
from ..core.split_engine import DEFAULT_SPLIT_ENGINE
from ..datasets.dataset import SpatialDataset
from ..datasets.edgap import city_model, load_edgap_city
from ..ml.model_selection import ModelFactory
from ..registry import MODELS, PARTITIONERS

#: Classifier families used in Figure 7, in presentation order.
PAPER_MODELS: Tuple[str, ...] = MODELS.paper_models()

#: Cities evaluated throughout Section 5.
PAPER_CITIES: Tuple[str, ...] = ("los_angeles", "houston")


def __getattr__(name: str):
    """Deprecation shim: ``PAPER_METHODS`` now lives in the registry."""
    if name == "PAPER_METHODS":
        warnings.warn(
            "repro.experiments.runner.PAPER_METHODS is deprecated; use "
            "repro.registry.PARTITIONERS.paper_methods()",
            DeprecationWarning,
            stacklevel=2,
        )
        return PARTITIONERS.paper_methods()
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


def build_dataset(
    city: str,
    grid_rows: int = 32,
    grid_cols: int = 32,
    n_records: int | None = None,
    seed: int = 7,
) -> SpatialDataset:
    """Generate the synthetic EdGap-like dataset for ``city``."""
    model = city_model(city)
    config = DatasetConfig(
        city=model.name,
        n_records=n_records or model.n_records,
        grid=GridConfig(rows=grid_rows, cols=grid_cols),
        seed=seed,
    )
    return load_edgap_city(config)


def build_partitioner(
    method: str,
    height: int,
    alphas: Sequence[float] = (0.5, 0.5),
    split_engine: str = DEFAULT_SPLIT_ENGINE,
) -> SpatialPartitioner:
    """Instantiate a partitioner by its method name.

    .. deprecated::
        Use :func:`repro.api.make_partitioner` with a
        :class:`~repro.api.specs.PartitionSpec`.  This shim delegates to the
        registry resolver, so unknown methods raise
        :class:`~repro.exceptions.ExperimentError` listing the available
        names with a nearest-match suggestion.
    """
    warnings.warn(
        "build_partitioner is deprecated; use "
        "repro.api.make_partitioner(PartitionSpec(method=..., height=...))",
        DeprecationWarning,
        stacklevel=2,
    )
    entry = PARTITIONERS.resolve(method)
    return make_partitioner(
        PartitionSpec(
            method=entry.name,
            height=height,
            alphas=tuple(alphas) if entry.flag("accepts_alphas") else None,
            split_engine=split_engine,
        )
    )


def build_partitioner_from_config(config: PartitionerConfig) -> SpatialPartitioner:
    """Instantiate a partitioner from a :class:`~repro.config.PartitionerConfig`.

    .. deprecated::
        Use :func:`repro.api.make_partitioner`; a ``PartitionerConfig``
        translates field-for-field into a
        :class:`~repro.api.specs.PartitionSpec`.
    """
    warnings.warn(
        "build_partitioner_from_config is deprecated; use "
        "repro.api.make_partitioner(PartitionSpec(...))",
        DeprecationWarning,
        stacklevel=2,
    )
    entry = PARTITIONERS.resolve(config.method)
    return make_partitioner(
        PartitionSpec(
            method=entry.name,
            height=config.height,
            objective=config.objective,
            alphas=tuple(config.alpha) if entry.flag("accepts_alphas") else None,
            split_engine=config.split_engine,
        )
    )


@dataclass(frozen=True)
class ExperimentContext:
    """Everything needed to run a figure experiment.

    Attributes
    ----------
    cities:
        City names to evaluate.
    model_kinds:
        Classifier families to train.
    methods:
        Partitioning methods to compare (defaults to the registry's
        Figures 7/8 roster).
    heights:
        Tree heights to sweep.
    grid_rows, grid_cols:
        Base-grid resolution (the paper does not fix one; 32x32 keeps runs
        fast while leaving room for height-10 trees).
    test_fraction, seed, ece_bins:
        Evaluation controls shared by every pipeline run.
    split_engine:
        Split-statistics engine used by every tree partitioner the
        experiments build (``"prefix_sum"`` or ``"record_scan"``).
    """

    cities: Tuple[str, ...] = PAPER_CITIES
    model_kinds: Tuple[str, ...] = ("logistic_regression",)
    methods: Tuple[str, ...] = field(default_factory=PARTITIONERS.paper_methods)
    heights: Tuple[int, ...] = (4, 6, 8, 10)
    grid_rows: int = 32
    grid_cols: int = 32
    test_fraction: float = 0.3
    seed: int = 11
    ece_bins: int = 15
    dataset_seed: int = 7
    split_engine: str = DEFAULT_SPLIT_ENGINE
    datasets: Dict[str, SpatialDataset] = field(default_factory=dict, compare=False)

    def dataset(self, city: str) -> SpatialDataset:
        """Dataset for ``city`` (generated once per context and cached)."""
        if city not in self.datasets:
            self.datasets[city] = build_dataset(
                city, self.grid_rows, self.grid_cols, seed=self.dataset_seed
            )
        return self.datasets[city]

    def model_factory(self, kind: str) -> ModelFactory:
        """Classifier factory for the model family ``kind``."""
        return model_factory_for(kind)

    def partitioner(self, method: str, height: int) -> SpatialPartitioner:
        """A partitioner wired to this context's split engine."""
        return make_partitioner(
            PartitionSpec(method=method, height=height, split_engine=self.split_engine)
        )

    def pipeline(self, kind: str) -> RedistrictingPipeline:
        """A redistricting pipeline wired to this context's controls."""
        return RedistrictingPipeline(
            self.model_factory(kind),
            test_fraction=self.test_fraction,
            ece_bins=self.ece_bins,
            seed=self.seed,
        )


def default_context(**overrides) -> ExperimentContext:
    """The context used by the benchmark suite (small but representative)."""
    return ExperimentContext(**overrides)


def paper_context(**overrides) -> ExperimentContext:
    """A context mirroring the paper's full sweep (all models, heights 4-10)."""
    params = dict(
        model_kinds=PAPER_MODELS,
        heights=(4, 5, 6, 7, 8, 9, 10),
    )
    params.update(overrides)
    return ExperimentContext(**params)
