"""Figure 10: the multi-objective Fair KD-tree evaluated per task.

One partition is built to serve the ACT and Employment tasks jointly
(alpha = 0.5 each); the experiment then evaluates, for every task, the
test-set ENCE obtained by retraining that task's classifier on the shared
partition — compared against the median KD-tree and the grid-reweighting
baselines at the same height.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Sequence, Tuple

from ..core.multi_objective import MultiObjectiveFairKDTreePartitioner
from ..core.pipeline import RedistrictingPipeline
from ..datasets.labels import LabelTask, act_task, employment_task
from ..datasets.splits import split_dataset
from .reporting import format_table
from .runner import ExperimentContext, build_partitioner, default_context

#: Methods compared in Figure 10 (the iterative variant is omitted, as in the paper).
MULTI_OBJECTIVE_METHODS: Tuple[str, ...] = (
    "median_kdtree",
    "multi_objective_fair_kdtree",
    "grid_reweighting",
)


@dataclass(frozen=True)
class MultiObjectiveResult:
    """Figure 10 result: test ENCE per (city, height, method, task)."""

    ence: Dict[Tuple[str, int, str, str], float] = field(default_factory=dict)

    def panel(self, city: str, height: int) -> Dict[str, Dict[str, float]]:
        """``{method: {task: ence}}`` for one (city, height) bar chart."""
        result: Dict[str, Dict[str, float]] = {}
        for (panel_city, panel_height, method, task), value in self.ence.items():
            if panel_city == city and panel_height == height:
                result.setdefault(method, {})[task] = value
        return result

    def render(self) -> str:
        sections = []
        cities = sorted({key[0] for key in self.ence})
        heights = sorted({key[1] for key in self.ence})
        for city in cities:
            for height in heights:
                panel = self.panel(city, height)
                if not panel:
                    continue
                tasks = sorted({task for values in panel.values() for task in values})
                rows = [
                    {"method": method, **{task: values.get(task) for task in tasks}}
                    for method, values in panel.items()
                ]
                sections.append(
                    format_table(
                        rows, title=f"Figure 10 — ENCE per task — {city}, height={height}"
                    )
                )
        return "\n\n".join(sections)


def run_multi_objective_experiment(
    context: Optional[ExperimentContext] = None,
    tasks: Optional[Sequence[LabelTask]] = None,
    alphas: Sequence[float] = (0.5, 0.5),
    model_kind: str = "logistic_regression",
    methods: Tuple[str, ...] = MULTI_OBJECTIVE_METHODS,
) -> MultiObjectiveResult:
    """Run the Figure 10 experiment over the context's cities and heights."""
    context = context or default_context()
    tasks = list(tasks) if tasks is not None else [act_task(), employment_task()]
    if len(tasks) != len(alphas):
        raise ValueError("one alpha weight is required per task")

    ence: Dict[Tuple[str, int, str, str], float] = {}
    for city in context.cities:
        dataset = context.dataset(city)
        factory = context.model_factory(model_kind)
        for height in context.heights:
            for method in methods:
                for task in tasks:
                    labels = task.labels(dataset)
                    split = split_dataset(
                        dataset, labels, test_fraction=context.test_fraction, seed=context.seed
                    )
                    pipeline = RedistrictingPipeline(
                        factory,
                        test_fraction=context.test_fraction,
                        ece_bins=context.ece_bins,
                        seed=context.seed,
                    )
                    if method == "multi_objective_fair_kdtree":
                        partitioner = MultiObjectiveFairKDTreePartitioner(
                            height, alphas=alphas, split_engine=context.split_engine
                        )
                        # The shared partition is built once from *all* tasks'
                        # training labels, then evaluated under the current task.
                        task_labels = [t.labels(dataset)[split.train_indices] for t in tasks]
                        output = partitioner.build_multi(split.train, task_labels, factory)
                        run = pipeline.run_split(split, partitioner, precomputed=output)
                    else:
                        partitioner = build_partitioner(
                            method, height, split_engine=context.split_engine
                        )
                        run = pipeline.run_split(split, partitioner)
                    ence[(city, height, method, task.name)] = run.test_metrics.ence
    return MultiObjectiveResult(ence=ence)
