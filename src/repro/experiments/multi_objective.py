"""Figure 10: the multi-objective Fair KD-tree evaluated per task.

One partition is built to serve the ACT and Employment tasks jointly
(alpha = 0.5 each); the experiment then evaluates, for every task, the
test-set ENCE obtained by retraining that task's classifier on the shared
partition — compared against the median KD-tree and the grid-reweighting
baselines at the same height.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Sequence, Tuple

from ..api.facade import make_partitioner
from ..api.specs import PartitionSpec
from ..core.pipeline import RedistrictingPipeline
from ..datasets.labels import LabelTask, act_task, employment_task
from ..datasets.splits import split_dataset
from ..registry import PARTITIONERS
from .reporting import format_table
from .runner import ExperimentContext, default_context

def multi_objective_methods() -> Tuple[str, ...]:
    """Methods compared in Figure 10: every multi-task-capable method against
    the paper's baselines (the iterative variant is omitted, as in the paper).

    Derived from the registry at call time, so partitioners registered
    after this module imported still appear in the sweep.
    """
    return PARTITIONERS.names(multi_task=True) + PARTITIONERS.paper_methods(
        baseline=True
    )


#: Import-time snapshot of :func:`multi_objective_methods`, kept for
#: reference; ``run_multi_objective_experiment`` re-derives it per call.
MULTI_OBJECTIVE_METHODS: Tuple[str, ...] = multi_objective_methods()


@dataclass(frozen=True)
class MultiObjectiveResult:
    """Figure 10 result: test ENCE per (city, height, method, task)."""

    ence: Dict[Tuple[str, int, str, str], float] = field(default_factory=dict)

    def panel(self, city: str, height: int) -> Dict[str, Dict[str, float]]:
        """``{method: {task: ence}}`` for one (city, height) bar chart."""
        result: Dict[str, Dict[str, float]] = {}
        for (panel_city, panel_height, method, task), value in self.ence.items():
            if panel_city == city and panel_height == height:
                result.setdefault(method, {})[task] = value
        return result

    def render(self) -> str:
        sections = []
        cities = sorted({key[0] for key in self.ence})
        heights = sorted({key[1] for key in self.ence})
        for city in cities:
            for height in heights:
                panel = self.panel(city, height)
                if not panel:
                    continue
                tasks = sorted({task for values in panel.values() for task in values})
                rows = [
                    {"method": method, **{task: values.get(task) for task in tasks}}
                    for method, values in panel.items()
                ]
                sections.append(
                    format_table(
                        rows, title=f"Figure 10 — ENCE per task — {city}, height={height}"
                    )
                )
        return "\n\n".join(sections)


def run_multi_objective_experiment(
    context: Optional[ExperimentContext] = None,
    tasks: Optional[Sequence[LabelTask]] = None,
    alphas: Sequence[float] = (0.5, 0.5),
    model_kind: str = "logistic_regression",
    methods: Optional[Tuple[str, ...]] = None,
) -> MultiObjectiveResult:
    """Run the Figure 10 experiment over the context's cities and heights."""
    context = context or default_context()
    methods = methods if methods is not None else multi_objective_methods()
    tasks = list(tasks) if tasks is not None else [act_task(), employment_task()]
    if len(tasks) != len(alphas):
        raise ValueError("one alpha weight is required per task")

    ence: Dict[Tuple[str, int, str, str], float] = {}
    for city in context.cities:
        dataset = context.dataset(city)
        factory = context.model_factory(model_kind)
        for height in context.heights:
            for method in methods:
                for task in tasks:
                    labels = task.labels(dataset)
                    split = split_dataset(
                        dataset, labels, test_fraction=context.test_fraction, seed=context.seed
                    )
                    pipeline = RedistrictingPipeline(
                        factory,
                        test_fraction=context.test_fraction,
                        ece_bins=context.ece_bins,
                        seed=context.seed,
                    )
                    if PARTITIONERS.resolve(method).flag("multi_task"):
                        partitioner = make_partitioner(
                            PartitionSpec(
                                method=method,
                                height=height,
                                alphas=tuple(alphas),
                                split_engine=context.split_engine,
                            )
                        )
                        # The shared partition is built once from *all* tasks'
                        # training labels, then evaluated under the current task.
                        task_labels = [t.labels(dataset)[split.train_indices] for t in tasks]
                        output = partitioner.build_multi(split.train, task_labels, factory)
                        run = pipeline.run_split(split, partitioner, precomputed=output)
                    else:
                        partitioner = context.partitioner(method, height)
                        run = pipeline.run_split(split, partitioner)
                    ence[(city, height, method, task.name)] = run.test_metrics.ence
    return MultiObjectiveResult(ence=ence)
