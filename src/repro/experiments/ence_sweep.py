"""Figure 7: ENCE versus tree height for every method, city and classifier.

For each (city, classifier family, method, height) combination the
re-districting pipeline is run and the test-set ENCE recorded.  The paper's
qualitative result: the fair KD-tree variants dominate the median KD-tree and
grid-reweighting baselines at every height, with the margin growing as the
partition becomes finer, and the iterative variant at least matching the
single-shot variant.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..core.results import MethodComparison
from ..datasets.labels import LabelTask, act_task
from ..registry import PARTITIONERS
from .reporting import format_series
from .runner import ExperimentContext, default_context


@dataclass(frozen=True)
class EnceSweepResult:
    """Figure 7 result: every pipeline run, indexed by configuration."""

    comparisons: Tuple[MethodComparison, ...] = field(default_factory=tuple)

    def series(
        self, city: str, model: str, split: str = "test"
    ) -> Dict[str, Dict[int, float]]:
        """``{method: {height: ence}}`` for one panel of the figure."""
        result: Dict[str, Dict[int, float]] = {}
        for comparison in self.comparisons:
            if comparison.city != city or comparison.model != model:
                continue
            metrics = comparison.test if split == "test" else comparison.train
            result.setdefault(comparison.method, {})[comparison.height] = metrics.ence
        return result

    def improvement_over_median(self, city: str, model: str, height: int) -> Dict[str, float]:
        """Relative ENCE improvement of each method over the median KD-tree.

        The reference method is the first entry of the registry's paper
        roster (the fairness-blind median KD-tree baseline).
        """
        reference = PARTITIONERS.paper_methods()[0]
        panel = self.series(city, model)
        baseline = panel.get(reference, {}).get(height)
        if baseline is None or baseline == 0:
            return {}
        return {
            method: (baseline - values[height]) / baseline
            for method, values in panel.items()
            if height in values and method != reference
        }

    def render(self, split: str = "test") -> str:
        """Text rendering of every (city, model) panel."""
        cities = sorted({c.city for c in self.comparisons})
        models = sorted({c.model for c in self.comparisons})
        sections = []
        for city in cities:
            for model in models:
                panel = self.series(city, model, split)
                if not panel:
                    continue
                sections.append(
                    format_series(
                        panel,
                        x_label="height",
                        title=f"Figure 7 — ENCE ({split}) — {city} / {model}",
                    )
                )
        return "\n\n".join(sections)


def run_ence_sweep(
    context: Optional[ExperimentContext] = None,
    task: Optional[LabelTask] = None,
) -> EnceSweepResult:
    """Run the full Figure 7 sweep described by ``context``."""
    context = context or default_context()
    task = task or act_task()
    comparisons: List[MethodComparison] = []
    for city in context.cities:
        dataset = context.dataset(city)
        for model_kind in context.model_kinds:
            pipeline = context.pipeline(model_kind)
            for height in context.heights:
                for method in context.methods:
                    partitioner = context.partitioner(method, height)
                    run = pipeline.run(dataset, task, partitioner)
                    comparisons.append(
                        MethodComparison(
                            method=method,
                            city=city,
                            model=model_kind,
                            height=height,
                            train=run.train_metrics,
                            test=run.test_metrics,
                            build_seconds=run.build_seconds,
                            metadata=run.partitioner_metadata,
                        )
                    )
    return EnceSweepResult(comparisons=tuple(comparisons))
