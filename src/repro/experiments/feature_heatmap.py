"""Figure 9: impact of features on decision-making across tree heights.

For each tree-based method and each height, the final model's permutation
feature importance is computed on the training data; one-hot neighborhood
columns are grouped so "Neighborhood" appears as a single feature, mirroring
the y-axis of the paper's heatmaps.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..datasets.labels import LabelTask, act_task
from ..ml.feature_importance import normalized_importance, permutation_importance
from ..ml.preprocessing import FeaturePipeline
from ..registry import PARTITIONERS
from .reporting import format_table
from .runner import ExperimentContext, default_context

def heatmap_methods() -> Tuple[str, ...]:
    """Methods shown in Figure 9: the paper-roster methods that grow a tree
    (the grid-reweighting baseline has no per-height structure to compare).

    Derived from the registry at call time, so partitioners registered
    after this module imported still appear in the sweep.
    """
    return PARTITIONERS.paper_methods(tree_based=True)


#: Import-time snapshot of :func:`heatmap_methods`, kept for reference;
#: ``run_feature_heatmap`` re-derives the roster per call.
HEATMAP_METHODS: Tuple[str, ...] = heatmap_methods()


@dataclass(frozen=True)
class FeatureHeatmapResult:
    """Figure 9 result: per (city, method, height) feature importance."""

    importances: Dict[Tuple[str, str, int], Dict[str, float]] = field(default_factory=dict)

    def heatmap(self, city: str, method: str) -> Dict[int, Dict[str, float]]:
        """``{height: {feature: importance}}`` for one panel."""
        return {
            height: values
            for (panel_city, panel_method, height), values in self.importances.items()
            if panel_city == city and panel_method == method
        }

    def feature_names(self) -> List[str]:
        for values in self.importances.values():
            return list(values.keys())
        return []

    def render(self) -> str:
        sections = []
        cities = sorted({key[0] for key in self.importances})
        methods = sorted({key[1] for key in self.importances})
        for city in cities:
            for method in methods:
                panel = self.heatmap(city, method)
                if not panel:
                    continue
                rows = [
                    {"height": height, **values} for height, values in sorted(panel.items())
                ]
                sections.append(
                    format_table(rows, title=f"Figure 9 — feature importance — {city} / {method}")
                )
        return "\n\n".join(sections)


def run_feature_heatmap(
    context: Optional[ExperimentContext] = None,
    task: Optional[LabelTask] = None,
    model_kind: str = "logistic_regression",
    methods: Optional[Tuple[str, ...]] = None,
    n_repeats: int = 3,
) -> FeatureHeatmapResult:
    """Run the Figure 9 heatmap experiment."""
    context = context or default_context()
    methods = methods if methods is not None else heatmap_methods()
    task = task or act_task()
    importances: Dict[Tuple[str, str, int], Dict[str, float]] = {}

    for city in context.cities:
        dataset = context.dataset(city)
        labels = task.labels(dataset)
        factory = context.model_factory(model_kind)
        for method in methods:
            for height in context.heights:
                partitioner = context.partitioner(method, height)
                output = partitioner.build(dataset, labels, factory)
                redistricted = dataset.with_partition(output.partition)

                matrix, names = redistricted.training_matrix(include_neighborhood=True)
                feature_pipeline = FeaturePipeline(categorical_index=len(names) - 1)
                transformed = feature_pipeline.fit_transform(matrix)
                model = factory()
                model.fit(transformed, labels)

                transformed_names = feature_pipeline.output_feature_names(names)
                groups: Dict[str, List[int]] = {}
                for index, name in enumerate(transformed_names):
                    group = "neighborhood" if name.startswith("neighborhood=") else name
                    groups.setdefault(group, []).append(index)

                raw = permutation_importance(
                    model,
                    transformed,
                    labels,
                    n_repeats=n_repeats,
                    seed=context.seed,
                    feature_groups=groups,
                )
                importances[(city, method, height)] = normalized_importance(raw)
    return FeatureHeatmapResult(importances=importances)
