"""Timing comparison between Fair KD-tree and Iterative Fair KD-tree.

Section 5.3.1 of the paper reports that the single-shot Fair KD-tree is about
45 % cheaper than the iterative variant (102 s vs 189 s at height 10 on their
hardware).  Absolute numbers depend on the machine and on the classifier, but
the *ratio* is driven by the number of model trainings (1 vs height), which
this experiment measures directly.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, Optional

from ..api.facade import make_partitioner
from ..api.specs import PartitionSpec
from ..datasets.labels import LabelTask, act_task
from ..registry import PARTITIONERS
from .reporting import format_table
from .runner import ExperimentContext, default_context


@dataclass(frozen=True)
class TimingResult:
    """Build-time (seconds) per method at one height, plus training counts."""

    city: str
    height: int
    seconds: Dict[str, float]
    model_trainings: Dict[str, int]

    @property
    def speedup_of_fair_over_iterative(self) -> float:
        """How many times faster the single-shot variant is (>= 1 expected)."""
        fair = self.seconds.get("fair_kdtree", 0.0)
        iterative = self.seconds.get("iterative_fair_kdtree", 0.0)
        if fair <= 0:
            return float("inf")
        return iterative / fair

    def render(self) -> str:
        rows = [
            {
                "method": method,
                "build_seconds": self.seconds[method],
                "model_trainings": self.model_trainings.get(method, 0),
            }
            for method in sorted(self.seconds)
        ]
        return format_table(
            rows, title=f"Timing — {self.city}, height={self.height}"
        )


def run_timing_experiment(
    context: Optional[ExperimentContext] = None,
    task: Optional[LabelTask] = None,
    city: str = "los_angeles",
    height: int = 10,
    model_kind: str = "logistic_regression",
    methods: Optional[tuple] = None,
    split_engine: Optional[str] = None,
) -> TimingResult:
    """Measure partition build time for each method at ``height``.

    ``methods`` defaults to the registry's tree-based paper roster (the
    fair, iterative-fair and median KD-trees — Section 5.3.1 compares the
    first two; the median baseline anchors the scale).  ``split_engine``
    overrides the context's engine when given.
    """
    context = context or default_context()
    methods = methods if methods is not None else PARTITIONERS.paper_methods(tree_based=True)
    split_engine = split_engine or context.split_engine
    task = task or act_task()
    dataset = context.dataset(city)
    labels = task.labels(dataset)
    factory = context.model_factory(model_kind)

    seconds: Dict[str, float] = {}
    trainings: Dict[str, int] = {}
    for method in methods:
        partitioner = make_partitioner(
            PartitionSpec(method=method, height=height, split_engine=split_engine)
        )
        start = time.perf_counter()
        output = partitioner.build(dataset, labels, factory)
        seconds[method] = time.perf_counter() - start
        trainings[method] = int(output.metadata.get("n_model_trainings", 0))
    return TimingResult(city=city, height=height, seconds=seconds, model_trainings=trainings)
