"""Figure 8: utility indicators versus tree height (logistic regression).

Reports, for every method and height: model accuracy, overall training
miscalibration, and overall test miscalibration.  The paper's qualitative
result: accuracy rises with height and is comparable across methods, and the
fair methods pay no meaningful calibration penalty at the model level.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..core.results import MethodComparison
from ..datasets.labels import LabelTask, act_task
from .reporting import format_series
from .runner import ExperimentContext, default_context

#: The three panels of Figure 8 (per city).
UTILITY_INDICATORS: Tuple[str, ...] = ("accuracy", "train_miscalibration", "test_miscalibration")


@dataclass(frozen=True)
class UtilitySweepResult:
    """Figure 8 result."""

    comparisons: Tuple[MethodComparison, ...] = field(default_factory=tuple)

    def series(self, city: str, indicator: str) -> Dict[str, Dict[int, float]]:
        """``{method: {height: value}}`` for one indicator panel."""
        result: Dict[str, Dict[int, float]] = {}
        for comparison in self.comparisons:
            if comparison.city != city:
                continue
            if indicator == "accuracy":
                value = comparison.test.accuracy
            elif indicator == "train_miscalibration":
                value = comparison.train.miscalibration
            elif indicator == "test_miscalibration":
                value = comparison.test.miscalibration
            else:
                raise ValueError(
                    f"unknown indicator {indicator!r}; expected one of {UTILITY_INDICATORS}"
                )
            result.setdefault(comparison.method, {})[comparison.height] = value
        return result

    def render(self) -> str:
        cities = sorted({c.city for c in self.comparisons})
        sections = []
        for city in cities:
            for indicator in UTILITY_INDICATORS:
                panel = self.series(city, indicator)
                if not panel:
                    continue
                sections.append(
                    format_series(
                        panel,
                        x_label="height",
                        title=f"Figure 8 — {indicator} — {city}",
                    )
                )
        return "\n\n".join(sections)


def run_utility_sweep(
    context: Optional[ExperimentContext] = None,
    task: Optional[LabelTask] = None,
    model_kind: str = "logistic_regression",
) -> UtilitySweepResult:
    """Run the Figure 8 sweep (a single classifier family, as in the paper)."""
    context = context or default_context()
    task = task or act_task()
    comparisons: List[MethodComparison] = []
    for city in context.cities:
        dataset = context.dataset(city)
        pipeline = context.pipeline(model_kind)
        for height in context.heights:
            for method in context.methods:
                partitioner = context.partitioner(method, height)
                run = pipeline.run(dataset, task, partitioner)
                comparisons.append(
                    MethodComparison(
                        method=method,
                        city=city,
                        model=model_kind,
                        height=height,
                        train=run.train_metrics,
                        test=run.test_metrics,
                        build_seconds=run.build_seconds,
                        metadata=run.partitioner_metadata,
                    )
                )
    return UtilitySweepResult(comparisons=tuple(comparisons))
