"""Typed configuration objects for experiments and algorithms.

The experiment harness (``repro.experiments``) and the benchmark suite build
these configurations explicitly so every run records exactly which knobs were
used.  All classes are frozen dataclasses: configurations are values, not
mutable state.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Sequence, Tuple

from .exceptions import ConfigurationError
from .registry import BACKENDS, MODELS, PARTITIONERS

#: Tree heights swept in the paper's Figures 7 and 8.
PAPER_HEIGHTS: Tuple[int, ...] = (4, 5, 6, 7, 8, 9, 10)

#: Tree heights reported in the paper's multi-objective Figure 10.
PAPER_MULTI_OBJECTIVE_HEIGHTS: Tuple[int, ...] = (4, 6, 8, 10)

#: Number of score bins used for ECE in the paper (Section 5.2).
PAPER_ECE_BINS = 15

#: ACT threshold used to generate labels (Section 5.1).
PAPER_ACT_THRESHOLD = 22.0

#: Family-employment threshold (percent) for the second task (Section 5.4).
PAPER_EMPLOYMENT_THRESHOLD = 10.0

#: Registered split-statistics engines, in preference order.  This is the
#: canonical registry: ``repro.core.split_engine`` re-exports it, and every
#: layer (config validation, CLI choices, ``MedianKDTree``) validates
#: against this tuple so adding an engine means editing one place.
SPLIT_ENGINES: Tuple[str, ...] = ("prefix_sum", "record_scan")

#: Engine used when callers do not ask for a specific one.
DEFAULT_SPLIT_ENGINE = "prefix_sum"


def validate_split_engine(kind: str) -> str:
    """Return ``kind`` if it names a registered split engine, else raise.

    Lives next to the registry so every consumer — partitioner
    constructors in :mod:`repro.core` and :class:`repro.spatial.kdtree.MedianKDTree`
    alike — validates against the same set of names.
    """
    if kind not in SPLIT_ENGINES:
        raise ConfigurationError(
            f"unknown split engine {kind!r}; available: {SPLIT_ENGINES}"
        )
    return kind


@dataclass(frozen=True)
class GridConfig:
    """Resolution of the base grid overlaid on the map (U x V)."""

    rows: int = 64
    cols: int = 64

    def __post_init__(self) -> None:
        if self.rows < 1 or self.cols < 1:
            raise ConfigurationError(
                f"grid must have positive dimensions, got {self.rows}x{self.cols}"
            )

    @property
    def shape(self) -> Tuple[int, int]:
        return (self.rows, self.cols)

    @property
    def n_cells(self) -> int:
        return self.rows * self.cols


@dataclass(frozen=True)
class DatasetConfig:
    """Configuration of the synthetic EdGap-like dataset for one city."""

    city: str = "los_angeles"
    n_records: int = 1153
    grid: GridConfig = field(default_factory=GridConfig)
    act_threshold: float = PAPER_ACT_THRESHOLD
    employment_threshold: float = PAPER_EMPLOYMENT_THRESHOLD
    seed: int = 7

    def __post_init__(self) -> None:
        if self.n_records < 1:
            raise ConfigurationError(f"n_records must be positive, got {self.n_records}")
        if not self.city:
            raise ConfigurationError("city must be a non-empty string")

    def with_seed(self, seed: int) -> "DatasetConfig":
        return replace(self, seed=seed)


@dataclass(frozen=True)
class ModelConfig:
    """Which classifier family to train and its hyper-parameters."""

    kind: str = "logistic_regression"
    learning_rate: float = 0.1
    max_iter: int = 300
    regularization: float = 1e-3
    max_depth: int = 6
    min_samples_leaf: int = 5
    var_smoothing: float = 1e-6
    seed: int = 13

    def __post_init__(self) -> None:
        # Known families live in the model registry (repro.registry.MODELS),
        # populated by the @register_model decorators in repro.ml; the
        # registry imports that package lazily on first lookup.
        if self.kind not in MODELS:
            raise ConfigurationError(MODELS.unknown_message(self.kind))
        if self.max_iter < 1:
            raise ConfigurationError("max_iter must be >= 1")
        if self.learning_rate <= 0:
            raise ConfigurationError("learning_rate must be positive")


@dataclass(frozen=True)
class PartitionerConfig:
    """Configuration of a spatial partitioner run.

    ``split_engine`` selects how tree builders compute per-node split
    statistics: ``"prefix_sum"`` (default) uses cumulative-sum tables built
    once per tree, ``"record_scan"`` re-scans the record arrays per node
    (the original, slower reference path).
    """

    method: str = "fair_kdtree"
    height: int = 6
    alpha: Tuple[float, ...] = (1.0,)
    objective: str = "balance"
    split_engine: str = "prefix_sum"

    def __post_init__(self) -> None:
        # Known methods live in the partitioner registry
        # (repro.registry.PARTITIONERS), populated by the
        # @register_partitioner decorators in repro.core.
        if self.method not in PARTITIONERS:
            raise ConfigurationError(PARTITIONERS.unknown_message(self.method))
        if self.height < 0:
            raise ConfigurationError(f"height must be non-negative, got {self.height}")
        total = sum(self.alpha)
        if self.alpha and abs(total - 1.0) > 1e-9:
            raise ConfigurationError(
                f"alpha weights must sum to 1, got {self.alpha} (sum={total})"
            )
        if self.split_engine not in SPLIT_ENGINES:
            raise ConfigurationError(
                f"unknown split engine {self.split_engine!r}; "
                f"expected one of {SPLIT_ENGINES}"
            )


@dataclass(frozen=True)
class ServingConfig:
    """Configuration of the partition serving layer.

    ``cache_entries`` bounds the number of partition artifacts the
    :class:`~repro.serving.ArtifactCache` keeps resident (least recently
    used beyond that are evicted).  ``strict`` selects how the server treats
    query points outside the map: ``False`` (default) maps them to ``-1``,
    ``True`` raises — the same switch as ``Partition.assign``.
    ``backend`` names the point-location index every server built under
    this config uses; known backends live in the locator-backend registry
    (:data:`repro.registry.BACKENDS`, populated by the ``@register_backend``
    decorators in :mod:`repro.serving.backends`) and aliases are accepted.

    The last two knobs tune sharded deployments
    (:class:`~repro.serving.sharding.ShardedDeployment`):
    ``shard_workers`` sizes the shared thread pool that gathers shard
    buckets under the ``parallel`` dispatch plan (``0``, the default,
    means one worker per CPU core capped at the tile count), and
    ``parallel_threshold`` is the batch size below which the ``auto`` and
    ``parallel`` plans stay sequential so small queries never pay pool or
    fused-index overhead.
    """

    cache_entries: int = 8
    strict: bool = False
    backend: str = "dense"
    shard_workers: int = 0
    parallel_threshold: int = 10_000

    def __post_init__(self) -> None:
        if self.cache_entries < 1:
            raise ConfigurationError(
                f"cache_entries must be >= 1, got {self.cache_entries}"
            )
        if self.backend not in BACKENDS:
            raise ConfigurationError(BACKENDS.unknown_message(self.backend))
        if self.shard_workers < 0:
            raise ConfigurationError(
                f"shard_workers must be >= 0 (0 = one per core), "
                f"got {self.shard_workers}"
            )
        if self.parallel_threshold < 1:
            raise ConfigurationError(
                f"parallel_threshold must be >= 1, got {self.parallel_threshold}"
            )


@dataclass(frozen=True)
class ExperimentConfig:
    """Top-level experiment description used by the harness and benches."""

    name: str
    dataset: DatasetConfig
    model: ModelConfig = field(default_factory=ModelConfig)
    heights: Sequence[int] = PAPER_HEIGHTS
    test_fraction: float = 0.3
    ece_bins: int = PAPER_ECE_BINS
    seed: int = 101

    def __post_init__(self) -> None:
        if not self.name:
            raise ConfigurationError("experiment name must be non-empty")
        if not 0.0 < self.test_fraction < 1.0:
            raise ConfigurationError(
                f"test_fraction must be in (0, 1), got {self.test_fraction}"
            )
        if self.ece_bins < 1:
            raise ConfigurationError("ece_bins must be >= 1")
        if any(h < 0 for h in self.heights):
            raise ConfigurationError("heights must be non-negative")
