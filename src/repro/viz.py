"""Terminal visualisation of partitions and per-neighborhood metrics.

Plotting libraries are not available offline, so this module renders maps as
text: a partition becomes a character grid (one letter per neighborhood), and
a metric surface (population, calibration error) becomes a shaded ASCII
heatmap.  These renderings are used by the examples and are handy when
inspecting a re-districted map in CI logs.
"""

from __future__ import annotations

from typing import Mapping, Sequence

import numpy as np

from .exceptions import EvaluationError
from .spatial.partition import Partition

#: Characters used to label neighborhoods in :func:`render_partition_ascii`.
_LABEL_ALPHABET = "ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789"

#: Shades from light to dark used by :func:`render_heatmap_ascii`.
_SHADES = " .:-=+*#%@"


def render_partition_ascii(partition: Partition, max_rows: int = 32, max_cols: int = 64) -> str:
    """Render a partition as a character grid (row 0 at the bottom, like a map).

    Each neighborhood is assigned a letter (cycling through the alphabet when
    there are more neighborhoods than symbols).  Large grids are downsampled
    to at most ``max_rows x max_cols`` characters.
    """
    grid = partition.grid
    row_step = max(1, grid.rows // max_rows)
    col_step = max(1, grid.cols // max_cols)
    lines = []
    for row in range(grid.rows - 1, -1, -row_step):
        characters = []
        for col in range(0, grid.cols, col_step):
            index = int(partition.assign([row], [col])[0])
            if index < 0:
                characters.append("?")
            else:
                characters.append(_LABEL_ALPHABET[index % len(_LABEL_ALPHABET)])
        lines.append("".join(characters))
    return "\n".join(lines)


def render_heatmap_ascii(
    values: np.ndarray, max_rows: int = 32, max_cols: int = 64, legend: bool = True
) -> str:
    """Render a 2-D value matrix as an ASCII heatmap (dark = large values)."""
    values = np.asarray(values, dtype=float)
    if values.ndim != 2:
        raise EvaluationError(f"expected a 2-D matrix, got shape {values.shape}")
    finite = values[np.isfinite(values)]
    low = float(finite.min()) if finite.size else 0.0
    high = float(finite.max()) if finite.size else 1.0
    span = high - low if high > low else 1.0

    row_step = max(1, values.shape[0] // max_rows)
    col_step = max(1, values.shape[1] // max_cols)
    lines = []
    for row in range(values.shape[0] - 1, -1, -row_step):
        characters = []
        for col in range(0, values.shape[1], col_step):
            value = values[row, col]
            if not np.isfinite(value):
                characters.append("?")
                continue
            level = int((value - low) / span * (len(_SHADES) - 1))
            characters.append(_SHADES[level])
        lines.append("".join(characters))
    rendering = "\n".join(lines)
    if legend:
        rendering += f"\n[min={low:.4g} max={high:.4g}; darker = larger]"
    return rendering


def partition_metric_surface(
    partition: Partition, metric_by_region: Mapping[int, float] | Sequence[float]
) -> np.ndarray:
    """Expand a per-neighborhood metric into a per-cell matrix.

    Useful input for :func:`render_heatmap_ascii`: every grid cell takes the
    value of the neighborhood containing it.
    """
    if isinstance(metric_by_region, Mapping):
        lookup = dict(metric_by_region)
    else:
        lookup = {index: float(value) for index, value in enumerate(metric_by_region)}
    grid = partition.grid
    surface = np.full(grid.shape, np.nan)
    for index, region in enumerate(partition.regions):
        value = lookup.get(index)
        if value is None:
            continue
        surface[region.row_start:region.row_stop, region.col_start:region.col_stop] = value
    return surface


def render_neighborhood_sizes(partition: Partition, rows: np.ndarray, cols: np.ndarray) -> str:
    """Convenience: ASCII heatmap of the population of each neighborhood."""
    sizes = partition.region_sizes(rows, cols)
    surface = partition_metric_surface(partition, sizes.astype(float))
    return render_heatmap_ascii(surface)
