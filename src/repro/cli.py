"""Command-line interface for the fair spatial indexing experiments.

Usage (after ``pip install -e .`` or from the repository root)::

    python -m repro list                       # list available experiments
    python -m repro disparity                  # Figure 6
    python -m repro ence                       # Figure 7
    python -m repro utility                    # Figure 8
    python -m repro features                   # Figure 9
    python -m repro multi-objective            # Figure 10
    python -m repro timing                     # Section 5.3.1 timing
    python -m repro ence --cities houston --heights 4 6 --output results.csv

Serving verbs persist built partitions, deploy them under names, and batch
query them without retraining::

    python -m repro build --cities los_angeles --heights 6 --artifact la.artifact
    python -m repro deploy --artifact la.artifact --name la --manifest deployments.json
    python -m repro deploy --artifact la.artifact --name la --manifest deployments.json --shards 2x2
    python -m repro swap-shard --name la --manifest deployments.json --shard 0x1 --artifact la_v2.artifact
    python -m repro rollback-shard --name la --manifest deployments.json --shard 0x1
    python -m repro deployments --manifest deployments.json
    python -m repro query --name la --manifest deployments.json --points points.csv
    python -m repro query --artifact la.artifact --points points.csv  # one-shot

The ``serve`` verb turns the manifest into a network service — a threaded
HTTP front over the engine speaking the typed query protocol as JSON
(``ServingClient`` is its Python client)::

    python -m repro serve --manifest deployments.json --port 8350 --admin

The ``lint`` verb runs the repository's static concurrency/invariant
checker (:mod:`repro.analysis`) over source paths — exit code 1 when it
finds violations, which is how CI gates on it::

    python -m repro lint src/
    python -m repro lint src/repro/serving --format json
    python -m repro lint src/ --baseline lint_baseline.json
    python -m repro lint --explain hot-path-copy

The ``sanitize-report`` verb renders the ``sanitizer_report.json`` a
``REPRO_SANITIZE=1`` test run leaves behind (see
:mod:`repro.analysis.sanitizer`), with the same exit-code contract::

    python -m repro sanitize-report sanitizer_report.json

Every command prints the regenerated table to stdout; ``--output`` also writes
the underlying rows to CSV.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import List, Optional, Sequence, Tuple

import numpy as np

from .api import PartitionSpec, RunSpec, build_partition
from .core.base import train_scores_on_dataset
from .core.results import comparisons_to_rows
from .core.split_engine import DEFAULT_SPLIT_ENGINE, SPLIT_ENGINES
from .datasets.labels import act_task
from .experiments.disparity import run_disparity_experiment
from .experiments.ence_sweep import run_ence_sweep
from .experiments.feature_heatmap import run_feature_heatmap
from .experiments.multi_objective import run_multi_objective_experiment
from .experiments.reporting import format_table
from .experiments.runner import PAPER_CITIES, default_context
from .experiments.timing import run_timing_experiment
from .experiments.utility_sweep import run_utility_sweep
from .config import ServingConfig
from .exceptions import ReproError
from .fairness.report import compare_partitions, improvement_summary
from .io.export import save_rows_csv
from .io.points import read_points_csv
from .logging_utils import configure_logging
from .registry import BACKENDS, MODELS, PARTITIONERS
from .serving import ServingEngine
from .serving.http import DEFAULT_PORT as DEFAULT_HTTP_PORT
from .serving.wire import DEFAULT_WIRE_PORT
from .viz import render_partition_ascii

EXPERIMENTS = (
    "disparity", "ence", "utility", "features", "multi-objective", "timing", "compare",
)

#: Serving verbs: persist a partition artifact, deploy bundles under names,
#: hot-swap/rollback single shard tiles, list deployments, batch-query by
#: name or path, serve a manifest over HTTP.
SERVING_COMMANDS = (
    "build", "deploy", "swap-shard", "rollback-shard", "deployments", "query",
    "serve",
)

#: Analysis verbs: run the AST lint rules of :mod:`repro.analysis` over
#: source paths, or render a saved runtime-sanitizer report.  A separate
#: tuple (not folded into the above) because experiment and serving
#: rosters are pinned by tests and drive registry-backed catalogues.
ANALYSIS_COMMANDS = ("lint", "sanitize-report")

#: Methods the ``build`` verb can persist (everything flagged ``servable``:
#: the single-task partitioners).  Import-time snapshot for reference and
#: tests; :func:`build_parser` re-derives the list from the registry on
#: every call so partitioners registered later still appear.
BUILD_METHODS = PARTITIONERS.names(servable=True)

#: Registered classifier families (import-time snapshot; the parser
#: re-derives them per call, like :data:`BUILD_METHODS`).
MODEL_CHOICES = MODELS.names()


def _parse_shards(text: str) -> Tuple[int, int]:
    """Parse ``--shards``: 'RxC' (e.g. '2x4') or a single count N -> NxN."""
    try:
        if "x" in text:
            rows_text, cols_text = text.split("x", 1)
            shards = (int(rows_text), int(cols_text))
        else:
            shards = (int(text), int(text))
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"expected 'RxC' or a single count, got {text!r}"
        ) from None
    if shards[0] < 1 or shards[1] < 1:
        raise argparse.ArgumentTypeError(f"shard counts must be positive, got {text!r}")
    return shards


def _parse_shard_address(text: str) -> Tuple[int, int]:
    """Parse ``--shard``: a 0-based 'RxC' tile address like '0x1'."""
    try:
        row_text, col_text = text.split("x", 1)
        address = (int(row_text), int(col_text))
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"expected a 0-based 'RxC' tile address like '0x1', got {text!r}"
        ) from None
    if address[0] < 0 or address[1] < 0:
        raise argparse.ArgumentTypeError(
            f"shard address must be non-negative, got {text!r}"
        )
    return address


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument parser (exposed for tests and docs)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Regenerate the evaluation figures of 'Fair Spatial Indexing' (EDBT 2024).",
    )
    parser.add_argument(
        "experiment",
        choices=EXPERIMENTS + SERVING_COMMANDS + ANALYSIS_COMMANDS + ("list",),
        help="which experiment or serving verb to run ('list' prints the catalogue)",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        metavar="PATH",
        help="files or directories the 'lint' verb analyses (default: src), "
        "or the report file 'sanitize-report' renders (default: "
        "sanitizer_report.json)",
    )
    parser.add_argument(
        "--cities", nargs="+", default=list(PAPER_CITIES), help="cities to evaluate"
    )
    parser.add_argument(
        "--heights", nargs="+", type=int, default=[4, 6, 8, 10], help="tree heights to sweep"
    )
    parser.add_argument(
        "--model",
        default="logistic_regression",
        choices=MODELS.names(),
        help="classifier family",
    )
    parser.add_argument("--grid", type=int, default=32, help="base grid resolution (grid x grid)")
    parser.add_argument(
        "--split-engine",
        default=DEFAULT_SPLIT_ENGINE,
        choices=SPLIT_ENGINES,
        help="how tree builders compute split statistics (prefix_sum: cumulative "
        "tables built once per tree; record_scan: legacy per-node record scan)",
    )
    parser.add_argument("--seed", type=int, default=11, help="evaluation seed")
    parser.add_argument("--output", default=None, help="optional CSV output path")
    parser.add_argument("--verbose", action="store_true", help="enable INFO logging")
    serving = parser.add_argument_group("serving (build / deploy / deployments / query verbs)")
    serving.add_argument(
        "--method",
        default="fair_kdtree",
        choices=PARTITIONERS.names(servable=True),
        help="partitioning method the 'build' verb persists; also selects the "
        "partition the 'compare' verb renders",
    )
    serving.add_argument(
        "--artifact",
        default=None,
        help="partition artifact bundle directory ('build' writes it, "
        "'deploy' registers it, 'query' serves it one-shot)",
    )
    serving.add_argument(
        "--points",
        default=None,
        help="CSV file with x,y columns — the coordinates the 'query' verb locates",
    )
    serving.add_argument(
        "--strict",
        action="store_true",
        help="make 'query' fail on off-map points instead of reporting -1",
    )
    serving.add_argument(
        "--no-strict",
        action="store_true",
        help="map off-map points to -1 even when the manifest was saved "
        "with strict serving (per-invocation override of the stored default)",
    )
    serving.add_argument(
        "--name",
        default=None,
        help="deployment name: 'deploy' deploys the artifact under it, "
        "'query' routes to it (requires --manifest)",
    )
    serving.add_argument(
        "--manifest",
        default=None,
        help="deployment manifest JSON shared by 'deploy', 'deployments' and "
        "'query --name' — the serving engine's persisted deployment table",
    )
    serving.add_argument(
        "--backend",
        default=None,
        choices=BACKENDS.names(),
        help="point-location backend servers are built with (dense: label-grid "
        "fancy indexing, the default; sparse: memory-lean row-band interval "
        "index); when omitted, manifest-backed verbs keep the backend the "
        "manifest was saved with",
    )
    serving.add_argument(
        "--shards",
        type=_parse_shards,
        default=None,
        help="serve the deployed artifact as an RxC shard tiling, e.g. "
        "'--shards 2x2' (or '--shards 3' for 3x3); 'deploy' only",
    )
    serving.add_argument(
        "--shard",
        type=_parse_shard_address,
        default=None,
        help="0-based tile address ('RxC', e.g. '0x1') the 'swap-shard' and "
        "'rollback-shard' verbs operate on",
    )
    analysis = parser.add_argument_group("static analysis ('lint' verb)")
    analysis.add_argument(
        "--format",
        dest="lint_format",
        default=None,
        choices=("text", "json"),
        help="lint report format: human-readable text (default) or the JSON "
        "document the CI static-analysis job archives",
    )
    analysis.add_argument(
        "--baseline",
        default=None,
        metavar="FILE",
        help="'lint' only: record current findings to FILE on first run, "
        "then fail only on findings not in that recording (incremental "
        "adoption on a tree with legacy findings)",
    )
    analysis.add_argument(
        "--explain",
        default=None,
        metavar="RULE",
        help="'lint' only: print what RULE checks (its doc, an example "
        "finding, and the suppression pragma) instead of linting; accepts "
        "canonical names and aliases",
    )
    transport = parser.add_argument_group("network transport ('serve' verb)")
    transport.add_argument(
        "--host",
        default="127.0.0.1",
        help="address the HTTP service binds (0.0.0.0 to accept remote clients)",
    )
    transport.add_argument(
        "--port",
        type=int,
        default=DEFAULT_HTTP_PORT,
        help="TCP port the HTTP service binds (0 picks an ephemeral port, "
        "printed at startup); ServingClient dials the same port by default",
    )
    transport.add_argument(
        "--admin",
        action="store_true",
        help="enable the mutating /v1/deploy and /v1/rollback endpoints "
        "(hot-swaps re-save the manifest); without it the service is "
        "strictly read-only",
    )
    transport.add_argument(
        "--threads",
        type=int,
        default=None,
        help="serve from a bounded pool of N worker threads instead of one "
        "thread per connection",
    )
    transport.add_argument(
        "--wire",
        choices=("binary", "off"),
        default=None,
        help="additionally serve the length-prefixed binary wire protocol "
        "next to HTTP (clients negotiate it via GET /v1/capabilities and "
        "fall back to JSON automatically); defaults to 'binary' when "
        "--workers is given, 'off' otherwise",
    )
    transport.add_argument(
        "--wire-port",
        type=int,
        default=None,
        help="TCP port for the binary wire listener "
        f"(default {DEFAULT_WIRE_PORT}; 0 picks an ephemeral port, printed "
        "at startup); only meaningful with --wire binary or --workers",
    )
    transport.add_argument(
        "--workers",
        type=int,
        default=0,
        help="fork N worker processes that answer the binary wire protocol "
        "from shared-memory label grids (admin hot-swaps republish to them); "
        "0 (default) serves the wire protocol, if enabled, from in-process "
        "threads",
    )
    return parser


def _context(args: argparse.Namespace):
    return default_context(
        cities=tuple(args.cities),
        heights=tuple(args.heights),
        model_kinds=(args.model,),
        grid_rows=args.grid,
        grid_cols=args.grid,
        seed=args.seed,
        split_engine=args.split_engine,
    )


def _experiment_catalogue() -> str:
    lines = ["Available experiments:"]
    descriptions = {
        "disparity": "Figure 6 — per-neighborhood calibration of an unmitigated model",
        "ence": "Figure 7 — ENCE vs tree height for every partitioning method",
        "utility": "Figure 8 — accuracy and overall miscalibration vs height",
        "features": "Figure 9 — permutation feature importance per height",
        "multi-objective": "Figure 10 — one partition serving the ACT and Employment tasks",
        "timing": "Section 5.3.1 — Fair vs Iterative Fair KD-tree build time",
        "compare": "Before/after fairness report + ASCII map for one city and height",
    }
    for name in EXPERIMENTS:
        lines.append(f"  {name:16s} {descriptions[name]}")
    lines.append("Serving verbs:")
    serving_descriptions = {
        "build": "Build a partition once and persist it as an artifact bundle",
        "deploy": "Deploy an artifact under a name (--manifest records versions)",
        "swap-shard": "Hot-swap one tile of a sharded deployment (--shard RxC)",
        "rollback-shard": "Step one tile of a sharded deployment back a version",
        "deployments": "List the manifest's deployments and active versions",
        "query": "Batch point-location by deployment name or artifact path",
        "serve": "Serve the manifest over HTTP (typed protocol as JSON)",
    }
    for name in SERVING_COMMANDS:
        lines.append(f"  {name:16s} {serving_descriptions[name]}")
    lines.append("Analysis verbs:")
    lines.append(
        f"  {'lint':16s} Static concurrency/invariant checks over source paths"
    )
    lines.append(
        f"  {'sanitize-report':16s} Render the report a REPRO_SANITIZE=1 "
        "test run wrote"
    )
    lines.append("Lint rules (suppress with '# repro: ignore[rule] -- why'):")
    from .analysis import LINT_RULES

    for name, summary in LINT_RULES.summaries().items():
        lines.append(f"   {name:28s} {summary}")
    lines.append("Partitioning methods (--method; from the registry):")
    for entry in PARTITIONERS:
        marker = "*" if entry.flag("servable") else " "
        lines.append(f" {marker} {entry.name:28s} {entry.summary}")
    lines.append("  (* = persistable by the 'build' verb)")
    lines.append("Classifier families (--model):")
    for name, summary in MODELS.summaries().items():
        lines.append(f"   {name:28s} {summary}")
    lines.append("Locator backends (--backend; from the registry):")
    for name, summary in BACKENDS.summaries().items():
        lines.append(f"   {name:28s} {summary}")
    return "\n".join(lines)


def _run_compare(context, args: argparse.Namespace) -> List[dict]:
    """Before/after fairness report for one city at one height.

    Trains a model once on the base grid (single neighborhood), then compares
    how the same confidence scores distribute over every partition of the
    registry's paper roster built at ``max(heights)``, and prints an ASCII
    map of the ``--method`` partition.
    """
    city = context.cities[0]
    height = max(context.heights)
    dataset = context.dataset(city)
    task = act_task()
    labels = task.labels(dataset)
    factory = context.model_factory(args.model)

    base = dataset.with_neighborhoods(np.zeros(dataset.n_records, dtype=int))
    scores, _, _ = train_scores_on_dataset(base, labels, factory)

    # The roster's first entry is the paper's reference baseline; every
    # improvement percentage below is relative to it.
    roster = PARTITIONERS.paper_methods()
    baseline = roster[0]
    assignments = {}
    shown_partition = None
    for method in roster:
        partitioner = context.partitioner(method, height)
        output = partitioner.build(dataset, labels, factory)
        assignments[method] = output.partition.assign(dataset.cell_rows, dataset.cell_cols)
        if method == args.method:
            shown_partition = output.partition

    rows = compare_partitions(scores, labels, assignments)
    print(format_table(rows, title=f"Fairness report — {city}, height {height}, task {task.name}"))
    improvements = improvement_summary(rows, baseline=baseline)
    print(f"\nENCE improvement over {baseline}:")
    for method, fraction in improvements.items():
        print(f"  {method:24s} {fraction * 100:6.1f}%")
    if shown_partition is not None:
        print(f"\n{args.method} partition (one letter per neighborhood, south at the bottom):")
        print(render_partition_ascii(shown_partition))
    return rows


def _run_build(context, args: argparse.Namespace) -> List[dict]:
    """Build one partition and persist it as an artifact bundle.

    The partition is built for the first requested city at the largest
    requested height; the artifact records full provenance (city, method,
    height, grid, engine, model, seeds) so ``query`` can report what it
    serves.
    """
    city = context.cities[0]
    height = max(context.heights)
    spec = RunSpec(
        partition=PartitionSpec(
            method=args.method, height=height, split_engine=context.split_engine
        ),
        city=city,
        model=args.model,
        grid_rows=context.grid_rows,
        grid_cols=context.grid_cols,
        seed=args.seed,
        dataset_seed=context.dataset_seed,
    )
    result = build_partition(spec, dataset=context.dataset(city))
    path = result.save(args.artifact)
    summary = result.partition.summary()
    print(
        f"built {spec.partition.method} partition of {city} at height {height}: "
        f"{result.n_neighborhoods} neighborhoods over a "
        f"{context.grid_rows}x{context.grid_cols} grid"
    )
    print(f"artifact written to {path}")
    return [
        {
            "city": city,
            "method": spec.partition.method,
            "height": height,
            "n_regions": result.n_neighborhoods,
            "min_cells": summary["min_cells"],
            "max_cells": summary["max_cells"],
            "artifact": str(path),
        }
    ]


def _serving_config(args: argparse.Namespace) -> ServingConfig:
    return ServingConfig(strict=args.strict, backend=args.backend or "dense")


def _engine_for(
    args: argparse.Namespace,
    require_manifest: bool = False,
    allow_overrides: bool = True,
) -> ServingEngine:
    """The serving engine a verb operates on: manifest-backed when given.

    ``deploy`` bootstraps a fresh engine when the manifest does not exist
    yet; verbs that *read* deployments pass ``require_manifest`` so a
    missing manifest is a clean error instead of an empty engine.  A
    manifest-backed engine keeps the serving config the manifest was saved
    with (notably the locator backend); for read-only verbs, ``--backend``
    / ``--strict`` override their own field for this invocation only.
    ``deploy`` passes ``allow_overrides=False`` — it re-saves the manifest,
    and a per-invocation flag must not rewrite the persisted config every
    other deployment serves under; :func:`run` rejects such flags up front
    (the manifest's config is fixed when the manifest is first created).
    """
    from .api import open_engine

    if args.manifest and (require_manifest or Path(args.manifest).is_file()):
        overrides = {}
        if allow_overrides:
            if args.backend:
                overrides["backend"] = args.backend
            if args.strict:
                overrides["strict"] = True
            elif args.no_strict:
                overrides["strict"] = False
        return ServingEngine.from_manifest(
            args.manifest,
            spec_validator=RunSpec.from_dict,
            config_overrides=overrides or None,
        )
    return open_engine(_serving_config(args))


def _cli_row(info: dict) -> dict:
    """One engine deployment summary as a printable/exportable table row."""
    return {
        "name": info["name"],
        "version": info["version"],
        "n_regions": info["n_regions"] if info.get("error") is None else "-",
        "backend": info["backend"] or "-",
        "shards": "x".join(map(str, info["shards"])) if info["shards"] else "-",
        "status": f"error: {info['error']}" if info.get("error") else "ok",
        "source": info["source"],
    }


def _deployment_rows(engine: ServingEngine) -> List[dict]:
    return [_cli_row(info) for info in engine.deployments()]


def _print_serving_stats(engine: ServingEngine) -> None:
    """The ``--verbose`` tail of the serving verbs: engine + cache counters."""
    stats = engine.stats
    cache = stats["cache"]
    print(
        "cache: "
        + " ".join(f"{key}={cache[key]}" for key in ("hits", "misses", "evictions", "reloads", "resident"))
        + f" hit_ratio={cache['hit_ratio']:.2f}"
    )
    for name, counters in stats["deployments"].items():
        print(
            f"deployment {name}: "
            + " ".join(f"{key}={value}" for key, value in counters.items())
        )


def _run_deploy(args: argparse.Namespace) -> List[dict]:
    """Deploy an artifact bundle under a name and persist the manifest.

    The engine loads and re-validates the bundle (embedded run spec
    included) before the deployment's active pointer moves, so a broken
    artifact cannot displace a serving version.
    """
    engine = _engine_for(args, allow_overrides=False)
    info = engine.deploy(args.name, args.artifact, shards=args.shards)
    engine.save_manifest(args.manifest)
    print(
        f"deployed {args.artifact} as {info['name']} v{info['version']} "
        f"({info['n_regions']} neighborhoods, {info['backend']} backend"
        + (f", {info['shards'][0]}x{info['shards'][1]} shards" if info["shards"] else "")
        + ")"
    )
    print(f"manifest written to {args.manifest}")
    if args.verbose:
        _print_serving_stats(engine)
    # Only the just-deployed row: that is what this invocation changed,
    # and the full table (with liveness stats of every bundle) is the
    # 'deployments' verb's job.
    return [_cli_row(info)]


def _run_swap_shard(args: argparse.Namespace) -> List[dict]:
    """Hot-swap one tile of a sharded deployment from a donor bundle.

    The tile's cell window is sliced out of the donor's label grid (the
    donor must be built over the same grid); the swap is logged in the
    manifest, so a restarted engine replays it.
    """
    engine = _engine_for(args, require_manifest=True, allow_overrides=False)
    row, col = args.shard
    info = engine.swap_shard(args.name, row, col, args.artifact)
    engine.save_manifest(args.manifest)
    print(
        f"swapped shard ({row}, {col}) of {info['name']} v{info['version']} "
        f"from {args.artifact} (tile now at version {info['shard_version']})"
    )
    print(f"manifest written to {args.manifest}")
    if args.verbose:
        _print_serving_stats(engine)
    return [
        {
            "name": info["name"],
            "version": info["version"],
            "shard": f"{row}x{col}",
            "shard_version": info["shard_version"],
            "artifact": args.artifact,
        }
    ]


def _run_rollback_shard(args: argparse.Namespace) -> List[dict]:
    """Step one tile of a sharded deployment back one label version."""
    engine = _engine_for(args, require_manifest=True, allow_overrides=False)
    row, col = args.shard
    info = engine.rollback_shard(args.name, row, col)
    engine.save_manifest(args.manifest)
    print(
        f"rolled back shard ({row}, {col}) of {info['name']} "
        f"v{info['version']} (tile now at version {info['shard_version']})"
    )
    print(f"manifest written to {args.manifest}")
    if args.verbose:
        _print_serving_stats(engine)
    return [
        {
            "name": info["name"],
            "version": info["version"],
            "shard": f"{row}x{col}",
            "shard_version": info["shard_version"],
        }
    ]


def _run_deployments(args: argparse.Namespace) -> List[dict]:
    """List the manifest's deployments (active version each)."""
    engine = _engine_for(args, require_manifest=True)
    rows = _deployment_rows(engine)
    print(format_table(rows, title=f"Deployments — {args.manifest}"))
    if args.verbose:
        _print_serving_stats(engine)
    return rows


def _run_query(args: argparse.Namespace) -> List[dict]:
    """Batch point-location, routed through the serving engine.

    ``--name``/``--manifest`` route to a named deployment; a bare
    ``--artifact`` is deployed one-shot under an ad-hoc name first — both
    paths re-validate the run spec embedded in each bundle, so a stale
    artifact naming a method this installation no longer knows fails here
    with a clean error instead of serving unidentifiable regions.
    """
    if args.name:
        engine = _engine_for(args, require_manifest=True)
        name = args.name
    else:
        # One-shot path queries stand alone: run() rejected --manifest
        # without --name, so this builds a fresh engine and a broken
        # deployment elsewhere cannot fail an unrelated artifact.
        engine = _engine_for(args)
        name = "adhoc"
        engine.deploy(name, args.artifact)
    xs, ys = read_points_csv(args.points)
    assignment = engine.locate_points(name, xs, ys)
    located = int(np.count_nonzero(assignment >= 0))
    info = engine.describe(name)
    provenance = info["server"].get("provenance", {})
    source = ", ".join(
        f"{key}={provenance[key]}"
        for key in ("city", "method", "height", "split_engine")
        if key in provenance
    )
    print(
        f"deployment {name} v{info['version']} "
        f"({info['backend']} backend): {info['n_regions']} neighborhoods"
        + (f" ({source})" if source else "")
    )
    print(
        f"located {located}/{len(assignment)} points in "
        f"{len(np.unique(assignment[assignment >= 0]))} distinct neighborhoods"
        + (f"; {len(assignment) - located} off-map -> -1" if located < len(assignment) else "")
    )
    if args.verbose:
        _print_serving_stats(engine)
    if not args.output:
        return []
    return [
        {"x": float(x), "y": float(y), "neighborhood": int(index)}
        for x, y, index in zip(xs, ys, assignment)
    ]


def _run_serve(args: argparse.Namespace) -> List[dict]:
    """Serve the manifest's deployments as a threaded HTTP service.

    The process blocks until interrupted (Ctrl-C / SIGTERM); queries are
    answered on worker threads, and the engine's per-deployment read/write
    locks keep admin hot-swaps atomic under concurrent traffic.  With
    ``--admin``, successful deploys and rollbacks re-save the manifest, so
    a restarted service serves what was last deployed.
    """
    from .serving import serve_engine

    engine = _engine_for(args, require_manifest=True, allow_overrides=not args.admin)
    wire_enabled = args.wire == "binary" or args.workers > 0
    server = serve_engine(
        engine,
        host=args.host,
        port=args.port,
        admin=args.admin,
        threads=args.threads,
        manifest_path=args.manifest if args.admin else None,
        wire_port=(
            (DEFAULT_WIRE_PORT if args.wire_port is None else args.wire_port)
            if wire_enabled
            else None
        ),
        workers=args.workers,
    )
    for row in _deployment_rows(engine):
        print(
            f"serving {row['name']} v{row['version']} "
            f"({row['n_regions']} neighborhoods, {row['backend']} backend)"
        )
    print(
        f"listening on {server.url} "
        + ("(admin endpoints enabled)" if args.admin else "(read-only)")
        + (f", {args.threads} worker threads" if args.threads else "")
    )
    if wire_enabled:
        wire_host, wire_port = server.wire_address
        print(
            f"binary wire protocol on {wire_host}:{wire_port} "
            + (
                f"({args.workers} shared-memory worker processes)"
                if args.workers
                else "(in-process)"
            )
        )
    if args.admin and args.host not in ("127.0.0.1", "localhost", "::1"):
        # The admin plane is unauthenticated by design (loopback / trusted
        # networks); binding it wide open deserves a loud note.
        print(
            "warning: admin endpoints are unauthenticated — anyone who can "
            f"reach {args.host}:{server.server_address[1]} can hot-swap "
            "deployments and load server-side bundle paths",
            file=sys.stderr,
        )
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        print("shutting down")
    finally:
        server.close()
    if args.verbose:
        _print_serving_stats(engine)
    return []


def _run_explain(rule_name: str) -> int:
    """Print one lint rule's documentation card; exit 2 on unknown names.

    The card is the onboarding answer to "the linter flagged me — why?":
    the rule's summary, its class docstring, an example finding (from the
    rule's ``example`` registration metadata), and the exact pragma that
    suppresses it with a justification.
    """
    import inspect

    from .analysis import LINT_RULES

    try:
        entry = LINT_RULES.resolve(rule_name)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    lines = [entry.name]
    if entry.aliases:
        lines.append(f"aliases: {', '.join(entry.aliases)}")
    if entry.summary:
        lines.append(f"summary: {entry.summary}")
    doc = inspect.getdoc(entry.obj)
    if doc:
        lines.extend(["", doc])
    example = entry.flag("example", "")
    if example:
        lines.extend(["", "example finding:", f"  {example}"])
    counterpart = entry.flag("static_counterpart", "")
    if entry.flag("runtime"):
        lines.extend(
            [
                "",
                "This is a runtime rule: it reports what the armed sanitizer "
                "(REPRO_SANITIZE=1) observed during execution, not what the "
                "static pass proved.",
            ]
        )
        if counterpart:
            lines.append(f"static counterpart: {counterpart}")
    pragma_names = " / ".join(
        f"# repro: ignore[{name}] -- <justification>"
        for name in ([counterpart, entry.name] if counterpart else [entry.name])
    )
    lines.extend(["", f"suppress with: {pragma_names}"])
    print("\n".join(lines))
    return 0


def _run_lint(args: argparse.Namespace) -> int:
    """Run the static checker; exit 0 clean, 1 on findings, 2 on bad input.

    Imported lazily so the experiment paths never pay for it.  ``--output``
    additionally writes the findings as CSV rows, like every other verb.
    With ``--baseline FILE`` the first run records the tree's findings and
    passes; later runs fail only on findings not in the recording.
    ``--explain RULE`` prints the rule's documentation card instead of
    linting anything.
    """
    from .analysis import lint_paths
    from .analysis.runner import apply_baseline

    if args.explain:
        return _run_explain(args.explain)
    try:
        report = lint_paths(args.paths or ["src"])
        recorded = False
        if args.baseline:
            report, recorded = apply_baseline(report, args.baseline)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    print(report.to_json() if args.lint_format == "json" else report.render_text())
    if args.output and report.findings:
        path = save_rows_csv([finding.to_dict() for finding in report.findings], args.output)
        print(f"wrote {len(report.findings)} findings to {path}", file=sys.stderr)
    if recorded:
        print(
            f"recorded {len(report.findings)} finding(s) as the lint "
            f"baseline at {args.baseline}; future runs fail only on new ones",
            file=sys.stderr,
        )
        return 0
    return 0 if report.clean else 1


def _run_sanitize_report(args: argparse.Namespace) -> int:
    """Render a saved runtime-sanitizer report with lint's exit contract.

    The report is the ``sanitizer_report.json`` a ``REPRO_SANITIZE=1`` test
    session wrote at exit (path overridable via ``REPRO_SANITIZE_REPORT``);
    this verb re-renders it for humans or CI without re-running the tests.
    """
    from .analysis import load_report

    paths = args.paths or ["sanitizer_report.json"]
    if len(paths) > 1:
        print("error: 'sanitize-report' renders exactly one report file", file=sys.stderr)
        return 2
    try:
        report = load_report(paths[0])
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    print(report.to_json() if args.lint_format == "json" else report.render_text())
    return 0 if report.clean else 1


def run(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point; returns a process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.verbose:
        configure_logging()

    if args.experiment == "list":
        print(_experiment_catalogue())
        return 0

    if args.experiment not in ANALYSIS_COMMANDS:
        if args.paths:
            parser.error(
                "positional PATH arguments apply to the analysis verbs "
                "('lint', 'sanitize-report') only"
            )
        if args.lint_format:
            parser.error(
                "--format applies to the analysis verbs "
                "('lint', 'sanitize-report') only"
            )
    if args.baseline and args.experiment != "lint":
        parser.error("--baseline applies to the 'lint' verb only")
    if args.explain and args.experiment != "lint":
        parser.error("--explain applies to the 'lint' verb only")
    if args.experiment == "lint":
        return _run_lint(args)
    if args.experiment == "sanitize-report":
        return _run_sanitize_report(args)

    if args.experiment in ("build", "deploy", "swap-shard") and not args.artifact:
        parser.error(f"'{args.experiment}' requires --artifact")
    if args.shards is not None and args.experiment != "deploy":
        parser.error("--shards applies to the 'deploy' verb only")
    if args.experiment in ("swap-shard", "rollback-shard"):
        if not (args.name and args.manifest):
            parser.error(f"'{args.experiment}' requires --name and --manifest")
        if args.shard is None:
            parser.error(
                f"'{args.experiment}' requires --shard (a 0-based RxC tile "
                "address like '--shard 0x1')"
            )
        if args.backend or args.strict or args.no_strict:
            # Shard ops re-save the manifest, same rule as deploy below.
            parser.error(
                f"--backend/--strict cannot be combined with "
                f"'{args.experiment}': the manifest keeps the config it was "
                "created with"
            )
    elif args.shard is not None:
        parser.error(
            "--shard applies to the 'swap-shard' and 'rollback-shard' verbs only"
        )
    if args.strict and args.no_strict:
        parser.error("--strict and --no-strict are mutually exclusive")
    if args.experiment == "deploy" and not (args.name and args.manifest):
        parser.error("'deploy' requires --name and --manifest")
    if args.experiment == "deploy" \
            and (args.backend or args.strict or args.no_strict) \
            and args.manifest and Path(args.manifest).is_file():
        # Ignoring the flag would silently lose intent; rewriting the
        # persisted config would silently change every other deployment.
        parser.error(
            "--backend/--strict configure a manifest only when it is first "
            "created; the existing manifest keeps the config it was saved with"
        )
    if args.experiment == "deployments" and not args.manifest:
        parser.error("'deployments' requires --manifest")
    if args.experiment == "serve":
        if not args.manifest:
            parser.error("'serve' requires --manifest")
        if args.threads is not None and args.threads < 1:
            parser.error(f"--threads must be >= 1, got {args.threads}")
        if args.workers < 0:
            parser.error(f"--workers must be >= 0, got {args.workers}")
        if args.wire == "off" and args.workers > 0:
            # Workers exist to answer the wire protocol; a pool with its
            # only transport disabled is a contradiction, not a default.
            parser.error(
                "--wire off cannot be combined with --workers: worker "
                "processes serve the binary wire protocol"
            )
        if args.wire_port is not None and args.wire == "off":
            parser.error("--wire-port is meaningless with --wire off")
        if args.admin and (args.backend or args.strict or args.no_strict):
            # Admin hot-swaps re-save the manifest; a per-invocation flag
            # must not silently rewrite the persisted serving config.
            parser.error(
                "--backend/--strict cannot be combined with 'serve --admin': "
                "admin hot-swaps re-save the manifest, which keeps the "
                "config it was created with"
            )
    elif args.admin or args.threads is not None \
            or args.wire is not None or args.wire_port is not None \
            or args.workers != 0 \
            or args.host != "127.0.0.1" or args.port != DEFAULT_HTTP_PORT:
        # Silently ignoring a transport flag would let `query --port N`
        # run in-process while the user believes they hit the service.
        parser.error(
            "--host/--port/--admin/--threads/--wire/--wire-port/--workers "
            "apply to the 'serve' verb only"
        )
    if args.experiment == "query":
        if not args.points:
            parser.error("'query' requires --points")
        if args.name and args.artifact:
            parser.error("'query' takes --name or --artifact, not both")
        if args.name and not args.manifest:
            parser.error("'query --name' requires --manifest")
        if args.manifest and not args.name:
            # One-shot path queries never read the manifest; accepting the
            # flag would silently drop the intent to use its stored config.
            parser.error("'query' takes --manifest only together with --name")
        if not args.name and not args.artifact:
            parser.error("'query' requires --name (with --manifest) or --artifact")

    context = _context(args)
    rows: List[dict] = []

    if args.experiment == "disparity":
        result = run_disparity_experiment(context)
        print(result.render())
        for city in context.cities:
            rows.extend({"city": city, **row} for row in result.rows(city))
    elif args.experiment == "ence":
        result = run_ence_sweep(context)
        print(result.render("test"))
        rows = comparisons_to_rows(result.comparisons)
    elif args.experiment == "utility":
        result = run_utility_sweep(context, model_kind=args.model)
        print(result.render())
        rows = comparisons_to_rows(result.comparisons)
    elif args.experiment == "features":
        result = run_feature_heatmap(context, model_kind=args.model)
        print(result.render())
        rows = [
            {"city": city, "method": method, "height": height, **values}
            for (city, method, height), values in sorted(result.importances.items())
        ]
    elif args.experiment == "multi-objective":
        result = run_multi_objective_experiment(context, model_kind=args.model)
        print(result.render())
        rows = [
            {"city": city, "height": height, "method": method, "task": task, "ence": value}
            for (city, height, method, task), value in sorted(result.ence.items())
        ]
    elif args.experiment == "timing":
        result = run_timing_experiment(
            context, city=context.cities[0], height=max(context.heights), model_kind=args.model
        )
        print(result.render())
        rows = [
            {
                "method": method,
                "build_seconds": seconds,
                "model_trainings": result.model_trainings.get(method, 0),
            }
            for method, seconds in result.seconds.items()
        ]
    elif args.experiment == "compare":
        rows = _run_compare(context, args)
    elif args.experiment in SERVING_COMMANDS:
        # Serving failures (missing/corrupt artifact or manifest, unknown
        # deployment names, off-map points under --strict, malformed points
        # files) are expected user errors, not bugs: report them cleanly
        # instead of dumping a traceback.
        serving_verbs = {
            "deploy": lambda: _run_deploy(args),
            "swap-shard": lambda: _run_swap_shard(args),
            "rollback-shard": lambda: _run_rollback_shard(args),
            "deployments": lambda: _run_deployments(args),
            "query": lambda: _run_query(args),
            "serve": lambda: _run_serve(args),
        }
        try:
            if args.experiment == "build":
                rows = _run_build(context, args)
            else:
                rows = serving_verbs[args.experiment]()
        except ReproError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 1

    if args.output and rows:
        path = save_rows_csv(rows, args.output)
        print(f"\nwrote {len(rows)} rows to {path}")
    return 0


def main() -> None:  # pragma: no cover - thin wrapper
    sys.exit(run())


if __name__ == "__main__":  # pragma: no cover
    main()
