"""Public API tour: specs, the registry, and the build/serve facade.

Run with:

    python examples/public_api.py

The script describes a run as a declarative :class:`~repro.api.RunSpec`,
round-trips it through JSON, executes it three ways (partition only, full
pipeline, persisted artifact) and re-opens the artifact as a query server
that re-validates the embedded spec.  It also prints the registry
catalogue — the single source of truth every entry point derives its
method/model lists from.
"""

from __future__ import annotations

import sys
import tempfile
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.api import (
    MODELS,
    PARTITIONERS,
    PartitionSpec,
    RunSpec,
    build_partition,
    open_engine,
    run_pipeline,
)


def main() -> None:
    # -- the registries are the one list of known components ----------------
    print("Registered partitioning methods:")
    for entry in PARTITIONERS:
        print(f"  {entry.name:28s} {entry.paper_ref or '-':28s} {entry.summary}")
    print("Registered classifier families:", ", ".join(MODELS.names()))

    # -- one spec describes the whole run; aliases are canonicalised --------
    spec = RunSpec(
        partition=PartitionSpec(method="fair", height=5),  # alias for fair_kdtree
        city="los_angeles",
        model="logreg",                                    # alias, too
        task="act",
        grid_rows=16,
        grid_cols=16,
        n_records=400,
    )
    print("\nRun spec (canonicalised):", spec.to_json())
    assert RunSpec.from_json(spec.to_json()) == spec       # lossless round-trip

    # -- build the partition, then run the full evaluation loop -------------
    result = build_partition(spec)
    print(f"built {result.n_neighborhoods} neighborhoods "
          f"for {spec.city} at height {spec.partition.height}")
    evaluated = run_pipeline(spec)
    print(f"full pipeline: test ENCE {evaluated.test_metrics.ence:.4f}, "
          f"accuracy {evaluated.test_metrics.accuracy:.3f}")

    # -- persist + serve: the artifact carries the spec that built it -------
    with tempfile.TemporaryDirectory() as scratch:
        bundle = result.save(Path(scratch) / "la.artifact")
        engine = open_engine()
        engine.deploy("la", bundle)                        # re-validates spec
        assert engine.server_for("la").spec == spec
        print(f"served deployment 'la' v1 from {bundle.name}: "
              f"point (0.45, 0.62) -> neighborhood "
              f"{int(engine.locate_points('la', [0.45], [0.62])[0])}")


if __name__ == "__main__":
    main()
