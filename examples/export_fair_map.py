"""Export a fair re-districted map as GeoJSON with per-neighborhood metrics.

Builds a Fair KD-tree partition for Los Angeles, attaches each neighborhood's
population and calibration error as GeoJSON properties, and writes the result
to ``fair_map_los_angeles.geojson`` (plus a CSV of per-neighborhood metrics).
Any GIS tool or web map can render the output directly.

Run with:

    python examples/export_fair_map.py [output_dir]
"""

from __future__ import annotations

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

import numpy as np

from repro import (
    DatasetConfig,
    FairKDTreePartitioner,
    GridConfig,
    ModelConfig,
    RedistrictingPipeline,
    act_task,
    load_edgap_city,
)
from repro.fairness.ence import neighborhood_calibration_report
from repro.io.export import partition_to_geojson, save_json, save_rows_csv
from repro.ml.model_selection import factory_for
from repro.ml.preprocessing import FeaturePipeline


def main() -> None:
    output_dir = Path(sys.argv[1]) if len(sys.argv) > 1 else Path(".")

    dataset = load_edgap_city(
        DatasetConfig(city="los_angeles", n_records=1153, grid=GridConfig(32, 32), seed=7)
    )
    task = act_task()
    pipeline = RedistrictingPipeline(
        factory_for(ModelConfig(kind="logistic_regression")), seed=11
    )
    result = pipeline.run(dataset, task, FairKDTreePartitioner(height=6))

    # Score the whole dataset to report per-neighborhood calibration alongside
    # the geometry.  A fresh model is trained on the re-districted full dataset
    # (the pipeline's model only knows the neighborhoods present in its
    # training split).
    redistricted = dataset.with_partition(result.partition)
    labels = task.labels(dataset)
    matrix, names = redistricted.training_matrix(include_neighborhood=True)
    feature_pipeline = FeaturePipeline(categorical_index=len(names) - 1)
    transformed = feature_pipeline.fit_transform(matrix)
    model = factory_for(ModelConfig(kind="logistic_regression"))()
    model.fit(transformed, labels)
    scores = model.predict_proba(transformed)
    report = {
        entry.neighborhood: entry
        for entry in neighborhood_calibration_report(scores, labels, redistricted.neighborhoods)
    }

    sizes = result.partition.region_sizes(dataset.cell_rows, dataset.cell_cols)
    properties = []
    rows = []
    for index in range(len(result.partition)):
        entry = report.get(index)
        record = {
            "population": int(sizes[index]),
            "calibration_error": float(entry.absolute_error) if entry else 0.0,
            "positive_fraction": float(entry.positive_fraction) if entry else 0.0,
        }
        properties.append(record)
        rows.append({"neighborhood": index, **record})

    geojson_path = save_json(
        partition_to_geojson(result.partition, properties),
        output_dir / "fair_map_los_angeles.geojson",
    )
    csv_path = save_rows_csv(rows, output_dir / "fair_map_los_angeles_metrics.csv")

    worst = max(rows, key=lambda row: row["calibration_error"])
    print(f"Wrote {geojson_path} ({len(result.partition)} neighborhoods) and {csv_path}.")
    print(
        f"Test ENCE of the exported map: {result.test_metrics.ence:.4f}; "
        f"worst neighborhood calibration error: {worst['calibration_error']:.3f} "
        f"(neighborhood {worst['neighborhood']}, population {worst['population']})."
    )


if __name__ == "__main__":
    main()
