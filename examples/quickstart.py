"""Quickstart: build a fair spatial partition and compare it to a median KD-tree.

Run with:

    python examples/quickstart.py

The script generates the synthetic Los Angeles EdGap-like dataset, builds a
Fair KD-tree and a Median KD-tree partition at the same height, retrains the
classifier on each re-districted map, and prints ENCE / accuracy side by side.
"""

from __future__ import annotations

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro import (
    DatasetConfig,
    FairKDTreePartitioner,
    GridConfig,
    MedianKDTreePartitioner,
    ModelConfig,
    RedistrictingPipeline,
    act_task,
    load_edgap_city,
)
from repro.experiments.reporting import format_table, improvement_percent
from repro.ml.model_selection import factory_for


def main() -> None:
    height = 6

    dataset = load_edgap_city(
        DatasetConfig(city="los_angeles", n_records=1153, grid=GridConfig(32, 32), seed=7)
    )
    task = act_task()
    pipeline = RedistrictingPipeline(
        factory_for(ModelConfig(kind="logistic_regression")), test_fraction=0.3, seed=11
    )

    rows = []
    results = {}
    for partitioner in (MedianKDTreePartitioner(height), FairKDTreePartitioner(height)):
        result = pipeline.run(dataset, task, partitioner)
        results[result.method] = result
        rows.append(
            {
                "method": result.method,
                "neighborhoods": result.n_neighborhoods,
                "ENCE (train)": result.train_metrics.ence,
                "ENCE (test)": result.test_metrics.ence,
                "accuracy (test)": result.test_metrics.accuracy,
                "build seconds": result.build_seconds,
            }
        )

    print(format_table(rows, title=f"Fair vs median KD-tree at height {height} (Los Angeles)"))

    median = results["median_kdtree"]
    fair = results["fair_kdtree"]
    gain = improvement_percent(median.test_metrics.ence, fair.test_metrics.ence)
    print(
        f"\nFair KD-tree improves test ENCE by {gain:.1f}% over the median KD-tree "
        f"while accuracy changes by "
        f"{(fair.test_metrics.accuracy - median.test_metrics.accuracy) * 100:+.1f} points."
    )


if __name__ == "__main__":
    main()
