"""Serving-engine tour: deployments, hot-swap/rollback, backends, sharding.

Run with:

    python examples/serving_engine.py

The script builds two partition artifacts (a fair KD-tree at two heights),
deploys them as successive versions of one named deployment, answers batch
queries through both the array-native hot path and the typed JSON
protocol, rolls the deployment back, compares the dense and sparse
locator backends, serves a sharded deployment, and persists the whole
deployment table to a manifest another process could reload.
"""

from __future__ import annotations

import sys
import tempfile
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

import numpy as np

from repro.api import (
    LocateRequest,
    PartitionSpec,
    RangeRequest,
    RunSpec,
    build_partition,
    open_engine,
)
from repro.config import ServingConfig
from repro.serving import ServingEngine


def build_artifact(scratch: Path, height: int) -> Path:
    spec = RunSpec(
        partition=PartitionSpec(method="fair_kdtree", height=height),
        city="los_angeles",
        grid_rows=16,
        grid_cols=16,
        n_records=400,
    )
    result = build_partition(spec)
    bundle = result.save(scratch / f"la_h{height}.artifact")
    print(f"built height-{height} artifact: {result.n_neighborhoods} neighborhoods")
    return bundle


def main() -> None:
    rng = np.random.default_rng(7)
    xs, ys = rng.uniform(-0.1, 1.1, 10_000), rng.uniform(-0.1, 1.1, 10_000)

    with tempfile.TemporaryDirectory() as tmp:
        scratch = Path(tmp)
        v1 = build_artifact(scratch, height=4)
        v2 = build_artifact(scratch, height=6)

        # -- named deployments with version history -------------------------
        engine = open_engine()                     # deploys re-validate specs
        engine.deploy("la", v1)
        engine.deploy("la", v2)                    # atomic hot-swap to v2
        print("\nactive:", engine.describe("la")["version"],
              "history:", engine.describe("la")["versions"])

        # -- the array-native hot path --------------------------------------
        assignment = engine.locate_points("la", xs, ys)
        print(f"routed {assignment.size} points; "
              f"{int(np.count_nonzero(assignment >= 0))} on-map")

        # -- the typed protocol: what a transport would speak ---------------
        wire = LocateRequest(deployment="la", xs=(0.45, 2.0), ys=(0.62, 0.5)).to_json()
        result = engine.locate(LocateRequest.from_json(wire))
        print("protocol locate:", result.to_dict())
        box = RangeRequest(deployment="la", min_x=0.0, min_y=0.0, max_x=0.25, max_y=0.25)
        print("protocol range:", engine.range_query(box).regions)

        # -- rollback: active moves, history stays addressable --------------
        engine.rollback("la")
        print("after rollback — active:", engine.describe("la")["version"],
              "| latest still:", engine.describe("la", "latest")["version"])
        pinned = engine.locate(
            LocateRequest(deployment="la", xs=(0.45,), ys=(0.62,), version="latest")
        )
        print("pinned to latest answered by v", pinned.version)

        # -- locator backends: same answers, different indexes --------------
        sparse_engine = ServingEngine(config=ServingConfig(backend="sparse"))
        sparse_engine.deploy("la", v2)
        dense_engine = ServingEngine()
        dense_engine.deploy("la", v2)
        assert np.array_equal(
            dense_engine.locate_points("la", xs, ys),
            sparse_engine.locate_points("la", xs, ys),
        )
        dense_info = dense_engine.describe("la")["server"]
        sparse_info = sparse_engine.describe("la")["server"]
        print(f"backends agree; index bytes — dense: {dense_info['index_bytes']}, "
              f"sparse: {sparse_info['index_bytes']}")

        # -- spatial sharding: scatter/gather, bit-identical ----------------
        engine.deploy("la_tiled", v2, shards=(2, 2))
        assert np.array_equal(
            engine.locate_points("la_tiled", xs, ys),
            dense_engine.locate_points("la", xs, ys),
        )
        print("2x2 sharded deployment matches monolithic; per-shard loads:",
              engine.server_for("la_tiled").shard_loads().tolist())

        # -- persist the deployment table for another process ---------------
        manifest = engine.save_manifest(scratch / "deployments.json")
        restored = ServingEngine.from_manifest(manifest)
        print("restored deployments:",
              [(d["name"], d["version"]) for d in restored.deployments()])
        print("engine stats:", engine.stats["deployments"]["la"],
              "| cache hit_ratio:", round(engine.stats["cache"]["hit_ratio"], 2))


if __name__ == "__main__":
    main()
