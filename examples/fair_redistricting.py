"""Fair re-districting study: ENCE and utility across tree heights.

Reproduces the shape of the paper's Figures 7 and 8 for one classifier family:
for every method (median KD-tree, fair KD-tree, iterative fair KD-tree, grid
re-weighting) and tree height, the script prints test-set ENCE, accuracy and
overall miscalibration, then summarises the relative improvement of the fair
methods over the median KD-tree baseline.

Run with:

    python examples/fair_redistricting.py [city]

where ``city`` is ``los_angeles`` (default) or ``houston``.
"""

from __future__ import annotations

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.experiments.ence_sweep import run_ence_sweep
from repro.experiments.reporting import format_series, improvement_percent
from repro.experiments.runner import default_context
from repro.experiments.utility_sweep import run_utility_sweep


def main() -> None:
    city = sys.argv[1] if len(sys.argv) > 1 else "los_angeles"
    heights = (4, 6, 8, 10)
    context = default_context(cities=(city,), heights=heights)

    ence = run_ence_sweep(context)
    utility = run_utility_sweep(context)

    print(format_series(
        ence.series(city, "logistic_regression", split="test"),
        x_label="height",
        title=f"Test ENCE by method — {city}",
    ))
    print()
    print(format_series(
        utility.series(city, "accuracy"),
        x_label="height",
        title=f"Test accuracy by method — {city}",
    ))
    print()
    print(format_series(
        utility.series(city, "test_miscalibration"),
        x_label="height",
        title=f"Overall test miscalibration by method — {city}",
    ))

    panel = ence.series(city, "logistic_regression", split="test")
    print("\nImprovement of Fair KD-tree over Median KD-tree (test ENCE):")
    for height in heights:
        gain = improvement_percent(
            panel["median_kdtree"][height], panel["fair_kdtree"][height]
        )
        print(f"  height {height:2d}: {gain:6.1f}%")


if __name__ == "__main__":
    main()
