"""Multi-objective planning: one set of neighborhoods serving two decision tasks.

Reproduces the shape of the paper's Figure 10.  A city wants a single spatial
partition (e.g. for publishing statistics or allocating budgets) that is fair
for two different classification tasks: predicting high school ACT performance
and predicting family employment.  The script builds a Multi-Objective Fair
KD-tree with equal task weights and compares the per-task ENCE against the
median KD-tree and grid re-weighting baselines at several heights.

Run with:

    python examples/multi_objective_planning.py
"""

from __future__ import annotations

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.experiments.multi_objective import run_multi_objective_experiment
from repro.experiments.reporting import format_table
from repro.experiments.runner import default_context


def main() -> None:
    heights = (4, 6, 8)
    context = default_context(cities=("los_angeles", "houston"), heights=heights)
    result = run_multi_objective_experiment(context, alphas=(0.5, 0.5))

    for city in context.cities:
        for height in heights:
            panel = result.panel(city, height)
            rows = [
                {"method": method, "ACT": values["ACT"], "Employment": values["Employment"]}
                for method, values in panel.items()
            ]
            print(format_table(rows, title=f"Test ENCE per task — {city}, height {height}"))
            print()

    print(
        "A single multi-objective partition (alpha = 0.5/0.5) improves neighborhood-level\n"
        "calibration for BOTH tasks relative to the median KD-tree and re-weighting baselines,\n"
        "so one published map can serve several decision-making pipelines fairly."
    )


if __name__ == "__main__":
    main()
