"""Disparity audit: show that an overall-calibrated model mistreats neighborhoods.

Reproduces the paper's Figure 6 scenario.  A logistic-regression model is
trained with (synthetic) zip-code neighborhoods as an ordinary feature; the
script prints the overall calibration ratio next to the calibration ratio and
ECE of the ten most populated zip codes, for both cities.

Run with:

    python examples/disparity_audit.py
"""

from __future__ import annotations

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.experiments.disparity import run_disparity_experiment
from repro.experiments.runner import default_context


def main() -> None:
    context = default_context(grid_rows=32, grid_cols=32)
    result = run_disparity_experiment(context, top_k=10, n_zipcodes=40)

    print(result.render())
    print()
    for city in context.cities:
        audit = result.audits[city]
        print(
            f"{city}: overall calibration looks fine "
            f"(train ratio {audit.overall_train.ratio:.3f}, "
            f"test ratio {audit.overall_test.ratio:.3f}), "
            f"but the worst top-10 neighborhood deviates by "
            f"{audit.max_ratio_deviation:.2f} from the ideal ratio of 1 "
            f"and reaches a per-neighborhood ECE of {audit.max_ece:.3f}."
        )


if __name__ == "__main__":
    main()
