"""HTTP serving tour: deploy, serve over the network, query, hot-swap.

Run with:

    python examples/serving_http.py

The script builds two partition artifacts, deploys the first under a
named deployment, starts the HTTP service on an ephemeral port (the same
server `python -m repro serve` runs), and then acts as a remote client:
health checks, batched point location via the dense encoding, a typed
protocol query, a range query, an admin hot-swap to the second artifact,
and a rollback — ending with the persisted manifest that would let a
restarted service pick up exactly where this one stopped.
"""

from __future__ import annotations

import sys
import tempfile
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

import numpy as np

from repro.api import (
    LocateRequest,
    PartitionSpec,
    RangeRequest,
    RunSpec,
    ServingClient,
    ServingEngine,
    build_partition,
    serve_engine,
)


def build_artifact(scratch: Path, height: int) -> Path:
    spec = RunSpec(
        partition=PartitionSpec(method="fair_kdtree", height=height),
        city="los_angeles",
        grid_rows=16,
        grid_cols=16,
        n_records=400,
    )
    result = build_partition(spec)
    bundle = result.save(scratch / f"la_h{height}.artifact")
    print(f"built height-{height} artifact: {result.n_neighborhoods} neighborhoods")
    return bundle


def main() -> None:
    rng = np.random.default_rng(7)
    xs, ys = rng.uniform(-0.1, 1.1, 10_000), rng.uniform(-0.1, 1.1, 10_000)

    with tempfile.TemporaryDirectory() as tmp:
        scratch = Path(tmp)
        v1 = build_artifact(scratch, height=4)
        v2 = build_artifact(scratch, height=6)
        manifest = scratch / "deployments.json"

        # -- deploy and serve (the CLI equivalent is `repro deploy` + ------
        # -- `repro serve --manifest … --admin`) ---------------------------
        engine = ServingEngine()
        engine.deploy("la", v1)
        engine.save_manifest(manifest)
        server = serve_engine(
            engine, port=0, admin=True, manifest_path=str(manifest)
        ).serve_background()
        host, port = server.server_address[:2]
        print(f"\nserving on {server.url}")

        # -- a remote client -----------------------------------------------
        with ServingClient(host=host, port=port) as client:
            print("health:", client.healthz())

            assignment = client.locate_points("la", xs, ys)
            located = int(np.count_nonzero(assignment >= 0))
            print(
                f"batch locate over the wire: {located}/{assignment.size} "
                f"points in {len(np.unique(assignment[assignment >= 0]))} neighborhoods"
            )

            result = client.locate(
                LocateRequest(deployment="la", xs=(0.45,), ys=(0.62,))
            )
            print(f"typed locate: point -> region {result.regions[0]} (v{result.version})")

            box = RangeRequest(
                deployment="la", min_x=0.2, min_y=0.2, max_x=0.5, max_y=0.5
            )
            print(f"range query: {len(client.range_query(box))} regions touch the box")

            # -- hot-swap under a live service (admin endpoint) -------------
            info = client.deploy("la", str(v2))
            print(
                f"\nhot-swapped to v{info['version']} "
                f"({info['n_regions']} neighborhoods); service never paused"
            )
            swapped = client.locate(
                LocateRequest(deployment="la", xs=(0.45,), ys=(0.62,))
            )
            print(f"same point now answered by v{swapped.version}")

            rolled = client.rollback("la")
            print(f"rolled back to v{rolled['version']}; history stays addressable")

            for row in client.deployments():
                print(
                    f"  deployment {row['name']}: v{row['version']} active "
                    f"(latest={row['latest']}, backend={row['backend']})"
                )

        server.close()

        # The manifest recorded every admin mutation: a fresh engine (or a
        # restarted `repro serve`) resumes exactly this state.
        restored = ServingEngine.from_manifest(manifest)
        info = restored.describe("la")
        print(
            f"\nrestored from manifest: versions {info['versions']}, "
            f"v{info['version']} active"
        )


if __name__ == "__main__":
    main()
